open Sva_ir
open Sva_analysis
open Sva_safety

type conf = Native | Sva_gcc | Sva_llvm | Sva_safe

let conf_name = function
  | Native -> "Linux-native"
  | Sva_gcc -> "Linux-SVA-GCC"
  | Sva_llvm -> "Linux-SVA-LLVM"
  | Sva_safe -> "Linux-SVA-Safe"

let all_confs = [ Native; Sva_gcc; Sva_llvm; Sva_safe ]

(* ---------- execution engine selection ---------- *)

type engine = Interp | Tiered | Aot

type engine_config = {
  eng_kind : engine;
  eng_threshold : int;
  eng_tcache_dir : string option;
}

let default_jit_threshold = 16

let default_engine =
  { eng_kind = Interp; eng_threshold = default_jit_threshold;
    eng_tcache_dir = None }

let tiered_engine = { default_engine with eng_kind = Tiered }
let aot_engine = { default_engine with eng_kind = Aot }

let engine_name = function
  | Interp -> "interp"
  | Tiered -> "tiered"
  | Aot -> "aot"

let engine_of_string = function
  | "interp" -> Some Interp
  | "tiered" -> Some Tiered
  | "aot" -> Some Aot
  | _ -> None

(* Shared argv-style flag parsing, so every binary accepts the same
   --engine=interp|tiered|aot, --jit-threshold=N and --tcache-dir=DIR
   spellings. *)
let engine_flag cfg arg =
  match String.index_opt arg '=' with
  | Some i when String.sub arg 0 i = "--engine" -> (
      let v = String.sub arg (i + 1) (String.length arg - i - 1) in
      match engine_of_string v with
      | Some k -> Some { cfg with eng_kind = k }
      | None -> invalid_arg ("unknown engine '" ^ v ^ "' (interp|tiered|aot)"))
  | Some i when String.sub arg 0 i = "--jit-threshold" -> (
      let v = String.sub arg (i + 1) (String.length arg - i - 1) in
      match int_of_string_opt v with
      | Some n when n >= 1 -> Some { cfg with eng_threshold = n }
      | _ -> invalid_arg ("bad --jit-threshold '" ^ v ^ "' (positive integer)"))
  | Some i when String.sub arg 0 i = "--tcache-dir" ->
      let v = String.sub arg (i + 1) (String.length arg - i - 1) in
      if v = "" then invalid_arg "bad --tcache-dir: empty path"
      else Some { cfg with eng_tcache_dir = Some v }
  | _ -> None

(* ---------- observability selection ---------- *)

type obs_config = {
  obs_trace : int option;  (* ring capacity when tracing is requested *)
  obs_trace_out : string option;
  obs_profile : bool;
}

let default_obs = { obs_trace = None; obs_trace_out = None; obs_profile = false }

(* Same contract as [engine_flag]: every binary accepts the same
   --trace[=N], --trace-out=FILE and --profile spellings, and a
   recognized-but-malformed flag is an error rather than silently
   ignored. *)
let obs_flag cfg arg =
  if arg = "--trace" then
    Some { cfg with obs_trace = Some Sva_rt.Trace.default_capacity }
  else if arg = "--profile" then Some { cfg with obs_profile = true }
  else
    match String.index_opt arg '=' with
    | Some i when String.sub arg 0 i = "--trace" -> (
        let v = String.sub arg (i + 1) (String.length arg - i - 1) in
        match int_of_string_opt v with
        | Some n when n >= 1 -> Some { cfg with obs_trace = Some n }
        | _ -> invalid_arg ("bad --trace '" ^ v ^ "' (positive ring capacity)"))
    | Some i when String.sub arg 0 i = "--trace-out" ->
        let v = String.sub arg (i + 1) (String.length arg - i - 1) in
        if v = "" then invalid_arg "bad --trace-out: empty path"
        else
          (* Writing a trace implies recording one. *)
          let cap =
            match cfg.obs_trace with
            | None -> Some Sva_rt.Trace.default_capacity
            | some -> some
          in
          Some { cfg with obs_trace_out = Some v; obs_trace = cap }
    | _ -> None

let install_obs cfg =
  (match cfg.obs_trace with
  | Some cap -> Sva_rt.Trace.enable ~capacity:cap ()
  | None -> ());
  if cfg.obs_profile then Sva_rt.Trace.enable_profile ()

(* ---------- simulated-SMP selection ---------- *)

type smp_config = {
  smp_cpus : int;  (* modeled CPUs, 1..Machine.max_cpus *)
  smp_seed : int;  (* scheduler interleaving seed *)
}

let default_smp = { smp_cpus = 1; smp_seed = 1 }

(* Same contract as [engine_flag]/[obs_flag]: every binary accepts the
   same --cpus=N and --smp-seed=S spellings, and a recognized-but-
   malformed flag is an error rather than silently ignored. *)
let smp_flag cfg arg =
  match String.index_opt arg '=' with
  | Some i when String.sub arg 0 i = "--cpus" -> (
      let v = String.sub arg (i + 1) (String.length arg - i - 1) in
      match int_of_string_opt v with
      | Some n when n >= 1 && n <= Sva_hw.Machine.max_cpus ->
          Some { cfg with smp_cpus = n }
      | _ ->
          invalid_arg
            (Printf.sprintf "bad --cpus '%s' (1..%d)" v Sva_hw.Machine.max_cpus))
  | Some i when String.sub arg 0 i = "--smp-seed" -> (
      let v = String.sub arg (i + 1) (String.length arg - i - 1) in
      match int_of_string_opt v with
      | Some n when n >= 0 -> Some { cfg with smp_seed = n }
      | _ -> invalid_arg ("bad --smp-seed '" ^ v ^ "' (non-negative integer)"))
  | _ -> None

type built = {
  bl_name : string;
  bl_conf : conf;
  bl_mod : Irmod.t;
  bl_pa : Pointsto.result option;
  bl_mps : Metapool.t option;
  bl_summary : Checkinsert.summary option;
  bl_aconfig : Pointsto.config;
  bl_annot : Sva_tyck.Tyck.annot option;
  bl_cloned : int;
  bl_devirt : int;
  bl_checkopt : Checkopt.summary option;
  bl_lint : Sva_lint.Lint.result option;
  bl_ranges : Interval.result option;
  bl_races : Lockset.result option;
  bl_poolcert : Poolev.bundle option;
}

(* ---------- module loading ---------- *)

let compile ?(pipeline = Passes.Llvm_like) ~name sources =
  let m = Minic.Lower.compile_strings ~name sources in
  Passes.run pipeline m;
  m

let is_bytecode data =
  let magic = Sva_bytecode.Codec.magic in
  String.length data >= String.length magic
  && String.sub data 0 (String.length magic) = magic

let load_source ~name data =
  if is_bytecode data then Sva_bytecode.Codec.decode data
  else compile ~name [ data ]

let load_file path =
  load_source
    ~name:(Filename.basename path)
    (In_channel.with_open_bin path In_channel.input_all)

(* ---------- building ---------- *)

let build_module ?(conf = Sva_safe) ?(aconfig = Pointsto.default_config)
    ?(options = Checkinsert.default_options) ?(typecheck = true)
    ?(clone = false) ?(devirt = false) ?(checkopt = false) ?(lint = false)
    ?lint_config ?(ranges = false) ?(races = false) ?(poolcert = false)
    ~name m =
  match conf with
  | Native | Sva_gcc | Sva_llvm ->
      {
        bl_name = name;
        bl_conf = conf;
        bl_mod = m;
        bl_pa = None;
        bl_mps = None;
        bl_summary = None;
        bl_aconfig = aconfig;
        bl_annot = None;
        bl_cloned = 0;
        bl_devirt = 0;
        bl_checkopt = None;
        bl_lint = None;
        bl_ranges = None;
        bl_races = None;
        bl_poolcert = None;
      }
  | Sva_safe ->
      let cloned = if clone then Clone.run m else 0 in
      let pa = Pointsto.run ~config:aconfig m in
      let mps = Metapool.infer m pa aconfig.Pointsto.allocators in
      (* Section 5: encode the analysis as metapool type annotations and
         run the (simple, intraprocedural, trusted) checker before any
         instrumentation is emitted. *)
      let annot =
        if typecheck then begin
          let an = Sva_tyck.Tyck.extract m pa mps in
          let trusted = Sva_tyck.Tyck.trusted_of_config aconfig in
          (match Sva_tyck.Tyck.check ~trusted m an with
          | [] -> ()
          | errs ->
              failwith
                ("metapool type checking failed:\n"
                ^ String.concat "\n"
                    (List.map Sva_tyck.Tyck.string_of_error errs)));
          Some an
        end
        else None
      in
      (* Pool-safety evidence (Section 5 applied to the points-to layer):
         distill the analysis into an explicit certificate bundle before
         anything consumes it, so devirtualization and check insertion
         can append their dv-cert / elision records as they go.  Bundle
         construction and recording are pure observation — the built
         module is bit-identical with and without certification. *)
      let pbundle =
        if poolcert then Some (Poolev.create m pa mps) else None
      in
      let devirted =
        if devirt then Devirt.run ?poolcert:pbundle m pa else 0
      in
      (* Value-range abstract interpretation (untrusted): runs on the
         final pre-instrumentation IR; every elision it grants below is
         recorded as a certificate and re-verified by the trusted
         checker after instrumentation. *)
      let rres = if ranges then Some (Interval.run m pa) else None in
      (* The static lint layer runs on the analyzed, still-uninstrumented
         module; its safe-access proofs feed check insertion below. *)
      let range_oracle kind =
        match rres with
        | Some rr -> fun ~fname i -> Interval.elide rr ~fname i kind
        | None -> fun ~fname:_ _ -> false
      in
      let lint_res =
        if lint then
          let config =
            match lint_config with
            | Some c -> c
            | None -> Sva_lint.Lint.config_of_aconfig aconfig
          in
          Some (Sva_lint.Lint.run ~config ~ranges:(range_oracle Interval.Cls) m pa)
        else None
      in
      let proofs =
        match lint_res with
        | Some r -> fun ~fname id -> Sva_lint.Lint.proved_safe r ~fname id
        | None -> fun ~fname:_ _ -> false
      in
      let summary =
        Checkinsert.run ~options ~proofs
          ~ranges:(range_oracle Interval.Cbounds) ?poolcert:pbundle m pa mps
          aconfig.Pointsto.allocators
      in
      let co = if checkopt then Some (Checkopt.run m) else None in
      (* Section 5 gate for the range pipeline: the trusted checker must
         accept every certificate behind an elision actually taken, or
         the build is rejected as a compiler bug. *)
      (match rres with
      | None -> ()
      | Some rr -> (
          let b = Interval.bundle rr in
          match
            Sva_tyck.Rangecert.check ~entries:(Interval.entry_config rr) m b
          with
          | [] ->
              let cb, cl = Interval.cert_counts rr in
              let ls_elided =
                match lint_res with
                | Some r -> r.Sva_lint.Lint.lr_range_geps
                | None -> 0
              in
              Sva_rt.Stats.add_range_bounds_elided summary.Checkinsert.bounds_static_range;
              Sva_rt.Stats.add_range_ls_elided ls_elided;
              Sva_rt.Stats.add_range_facts (Interval.fact_count rr);
              Sva_rt.Stats.add_range_cert_checks (cb + cl);
              if !Sva_rt.Trace.active then begin
                Sva_rt.Trace.emit_range_elide ~what:"bounds"
                  ~count:summary.Checkinsert.bounds_static_range;
                Sva_rt.Trace.emit_range_elide ~what:"ls" ~count:ls_elided
              end
          | errs ->
              failwith
                ("range certificate checking failed:\n"
                ^ String.concat "\n"
                    (List.map Sva_tyck.Rangecert.string_of_error errs))));
      (* Section 5 gate for the pool-safety pipeline: the trusted checker
         re-verifies every membership fact, TH/completeness/devirt
         certificate and elision record against the instrumented module,
         or the build is rejected as a compiler bug. *)
      (match pbundle with
      | None -> ()
      | Some b -> (
          let certs = Poolev.cert_count b in
          Sva_rt.Stats.add_pool_certs_emitted certs;
          Sva_rt.Stats.add_pool_elisions (Poolev.elision_count b);
          match Sva_tyck.Poolcert.check ~config:aconfig m b with
          | [] -> Sva_rt.Stats.add_pool_certs_verified certs
          | errs ->
              Sva_rt.Stats.add_pool_certs_rejected certs;
              failwith
                ("pool-safety certificate checking failed:\n"
                ^ String.concat "\n"
                    (List.map Sva_tyck.Poolcert.string_of_error errs))));
      (* Concurrency-safety pass (untrusted): the interprocedural lockset
         analysis classifies interrupt/syscall-shared state and certifies
         every protected access; the trusted atomicity checker must accept
         the whole certificate bundle or the build is rejected.  Runs on
         the instrumented module — the inserted check intrinsics are
         identity for the protection lattice. *)
      let races_res =
        if not races then None
        else begin
          let rr = Lockset.run m pa in
          (match
             Sva_tyck.Atomcert.check ~entries:(Lockset.entry_config rr) m
               (Lockset.bundle rr)
           with
          | [] -> ()
          | errs ->
              failwith
                ("atomicity certificate checking failed:\n"
                ^ String.concat "\n"
                    (List.map Sva_tyck.Atomcert.string_of_error errs)));
          Some rr
        end
      in
      {
        bl_name = name;
        bl_conf = conf;
        bl_mod = m;
        bl_pa = Some pa;
        bl_mps = Some mps;
        bl_summary = Some summary;
        bl_aconfig = aconfig;
        bl_annot = annot;
        bl_cloned = cloned;
        bl_devirt = devirted;
        bl_checkopt = co;
        bl_lint = lint_res;
        bl_ranges = rres;
        bl_races = races_res;
        bl_poolcert = pbundle;
      }

let build ?conf ?aconfig ?options ?typecheck ?clone ?devirt ?checkopt ?lint
    ?lint_config ?ranges ?races ?poolcert ~name sources =
  let pipeline =
    match conf with
    | Some Native | Some Sva_gcc -> Passes.Gcc_like
    | Some Sva_llvm | Some Sva_safe | None -> Passes.Llvm_like
  in
  let m = compile ~pipeline ~name sources in
  build_module ?conf ?aconfig ?options ?typecheck ?clone ?devirt ?checkopt
    ?lint ?lint_config ?ranges ?races ?poolcert ~name m

let instantiate ?sys ?(engine = default_engine) ?(smp = default_smp) built =
  let mode =
    match built.bl_conf with
    | Native -> Sva_os.Svaos.Native_inline
    | Sva_gcc | Sva_llvm | Sva_safe -> Sva_os.Svaos.Sva_mediated
  in
  let sys =
    match sys with
    | Some s ->
        Sva_os.Svaos.set_mode s mode;
        s
    | None -> Sva_os.Svaos.create ~mode ~ncpus:smp.smp_cpus ()
  in
  let metapools =
    match built.bl_mps with
    | Some mps ->
        (* The pools' cache shards follow this instance's CPU context, so
           a check on CPU k consults CPU k's shard. *)
        Checkinsert.runtime_pools ~smp:(Sva_os.Svaos.smpctx sys)
          ~user_range:(Sva_hw.Machine.user_base, Sva_hw.Machine.user_size)
          mps
    | None -> []
  in
  let t = Sva_interp.Interp.load ~sys ~metapools built.bl_mod in
  (* Persistent translation store: installed only when the caller asked
     for one, so a test-installed directory survives instantiations that
     don't mention it. *)
  (match engine.eng_tcache_dir with
  | Some _ as d -> Sva_interp.Tcache_disk.set_dir d
  | None -> ());
  (* Second execution tier, if selected: installed before any code runs
     so even the boot-time registration pass is profiled.  AOT closure-
     compiles the whole kernel right now (threshold 1 catches stragglers
     linked later) — against a populated persistent store this is pure
     verified reuse, so a second process boots hot. *)
  (match engine.eng_kind with
  | Interp -> ()
  | Tiered -> Sva_interp.Closcomp.enable ~threshold:engine.eng_threshold t
  | Aot ->
      Sva_interp.Closcomp.enable ~threshold:1 t;
      Sva_interp.Closcomp.compile_all t);
  (* SVM boot step: register every global object in its metapool before
     control first enters the program. *)
  if Irmod.find_func built.bl_mod "__sva_register_globals" <> None then
    ignore (Sva_interp.Interp.call t "__sva_register_globals" []);
  t
