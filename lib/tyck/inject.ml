open Sva_ir

type kind = Wrong_var_mp | Wrong_edge | False_th | Split_mp

let kind_name = function
  | Wrong_var_mp -> "incorrect variable aliasing"
  | Wrong_edge -> "incorrect inter-node edge"
  | False_th -> "incorrect type-homogeneity claim"
  | Split_mp -> "insufficient node merging"

let all_kinds = [ Wrong_var_mp; Wrong_edge; False_th; Split_mp ]

let copy_annot (an : Tyck.annot) : Tyck.annot =
  {
    Tyck.an_value_mp = Hashtbl.copy an.Tyck.an_value_mp;
    an_global_mp = Hashtbl.copy an.Tyck.an_global_mp;
    an_fn_mp = Hashtbl.copy an.Tyck.an_fn_mp;
    an_ret_mp = Hashtbl.copy an.Tyck.an_ret_mp;
    an_succ = Hashtbl.copy an.Tyck.an_succ;
    an_th = Hashtbl.copy an.Tyck.an_th;
  }

let max_mp (an : Tyck.annot) =
  let m = ref 0 in
  Hashtbl.iter (fun _ v -> if v > !m then m := v) an.Tyck.an_value_mp;
  Hashtbl.iter (fun _ v -> if v > !m then m := v) an.Tyck.an_succ;
  Hashtbl.iter (fun v s -> m := max !m (max v s)) an.Tyck.an_succ;
  !m

(* Sites where a value's metapool qualifier is actually constrained by a
   local rule: gep bases (their result must match).  Deterministic order. *)
let gep_sites (m : Irmod.t) (an : Tyck.annot) =
  List.concat_map
    (fun (f : Func.t) ->
      if Func.has_attr f Func.Noanalyze then []
      else
        Func.fold_instrs f
          (fun acc _ (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Gep (Value.Reg (bid, _, _), _)
              when Hashtbl.mem an.Tyck.an_value_mp (f.Func.f_name, bid)
                   && Hashtbl.mem an.Tyck.an_value_mp (f.Func.f_name, i.Instr.id)
              ->
                (f.Func.f_name, bid, i.Instr.id) :: acc
            | _ -> acc)
          []
        |> List.rev)
    m.Irmod.m_funcs

(* Loads of pointers: both the pointer and the result are annotated, so the
   succ edge is checked. *)
let load_sites (m : Irmod.t) (an : Tyck.annot) =
  List.concat_map
    (fun (f : Func.t) ->
      if Func.has_attr f Func.Noanalyze then []
      else
        Func.fold_instrs f
          (fun acc _ (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Load (Value.Reg (pid, _, _))
              when Hashtbl.mem an.Tyck.an_value_mp (f.Func.f_name, pid)
                   && Hashtbl.mem an.Tyck.an_value_mp (f.Func.f_name, i.Instr.id)
              ->
                (f.Func.f_name, pid, i.Instr.id) :: acc
            | _ -> acc)
          []
        |> List.rev)
    m.Irmod.m_funcs

(* Loads/stores through a whole-object (non-interior) pointer: a false TH
   claim on the pointer's pool is checkable there. *)
let access_sites (m : Irmod.t) (an : Tyck.annot) =
  List.concat_map
    (fun (f : Func.t) ->
      if Func.has_attr f Func.Noanalyze then []
      else begin
        let interior = Hashtbl.create 16 in
        Func.fold_instrs f
          (fun acc _ (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Gep (base, idxs) ->
                let base_interior =
                  match base with
                  | Value.Reg (id, _, _) -> Hashtbl.mem interior id
                  | _ -> false
                in
                if
                  Sva_analysis.Pointsto.gep_enters_struct m.Irmod.m_ctx
                    (Value.ty base) idxs
                  || base_interior
                then Hashtbl.replace interior i.Instr.id ();
                (* A gep through a whole-object pointer also constrains the
                   pool's homogeneous type (the checker's th_access rule). *)
                (match base with
                | Value.Reg (bid, bty, _)
                  when (not base_interior)
                       && Hashtbl.mem an.Tyck.an_value_mp (f.Func.f_name, bid) ->
                    (f.Func.f_name, bid, Ty.pointee bty) :: acc
                | _ -> acc)
            | Instr.Load (Value.Reg (pid, pty, _))
              when (not (Hashtbl.mem interior pid))
                   && Hashtbl.mem an.Tyck.an_value_mp (f.Func.f_name, pid) ->
                (f.Func.f_name, pid, Ty.pointee pty) :: acc
            | Instr.Store (_, Value.Reg (pid, pty, _))
              when (not (Hashtbl.mem interior pid))
                   && Hashtbl.mem an.Tyck.an_value_mp (f.Func.f_name, pid) ->
                (f.Func.f_name, pid, Ty.pointee pty) :: acc
            | _ -> acc)
          []
        |> List.rev
      end)
    m.Irmod.m_funcs

let nth_opt l n = List.nth_opt l n

let inject (m : Irmod.t) (an : Tyck.annot) kind ~seed =
  let an' = copy_annot an in
  let fresh = max_mp an + 1 + seed in
  match kind with
  | Wrong_var_mp -> (
      match nth_opt (gep_sites m an) seed with
      | Some (fname, _base, res) ->
          let old = Hashtbl.find an'.Tyck.an_value_mp (fname, res) in
          Hashtbl.replace an'.Tyck.an_value_mp (fname, res) (old + 1 + fresh);
          Some
            ( an',
              Printf.sprintf
                "@%s: register r%d moved from M%d to bogus pool" fname res old )
      | None -> None)
  | Wrong_edge -> (
      match nth_opt (load_sites m an) seed with
      | Some (fname, pid, _res) ->
          let pm = Hashtbl.find an'.Tyck.an_value_mp (fname, pid) in
          Hashtbl.replace an'.Tyck.an_succ pm fresh;
          Some
            ( an',
              Printf.sprintf "@%s: M%d's points-to edge rewired to bogus pool"
                fname pm )
      | None -> None)
  | False_th -> (
      match nth_opt (access_sites m an) seed with
      | Some (fname, pid, accessed) ->
          let pm = Hashtbl.find an'.Tyck.an_value_mp (fname, pid) in
          (* Claim a homogeneous type that differs from this access (after
             the same array reduction the checker applies). *)
          let accessed =
            match accessed with Ty.Array (e, _) -> e | t -> t
          in
          let bogus = if Ty.equal accessed Ty.i64 then Ty.i32 else Ty.i64 in
          Hashtbl.replace an'.Tyck.an_th pm bogus;
          Some
            ( an',
              Printf.sprintf
                "@%s: M%d falsely claimed homogeneous of type %s (accessed as \
                 %s)"
                fname pm (Ty.to_string bogus) (Ty.to_string accessed) )
      | None -> None)
  | Split_mp -> (
      match nth_opt (gep_sites m an) seed with
      | Some (fname, base, res) ->
          let old = Hashtbl.find an'.Tyck.an_value_mp (fname, base) in
          (* Clone the pool's facts under a fresh id and move only the base
             there: the gep rule sees two different pools. *)
          (match Hashtbl.find_opt an'.Tyck.an_succ old with
          | Some s -> Hashtbl.replace an'.Tyck.an_succ fresh s
          | None -> ());
          (match Hashtbl.find_opt an'.Tyck.an_th old with
          | Some t -> Hashtbl.replace an'.Tyck.an_th fresh t
          | None -> ());
          Hashtbl.replace an'.Tyck.an_value_mp (fname, base) fresh;
          Some
            ( an',
              Printf.sprintf
                "@%s: M%d split — r%d left behind in a clone pool (gep at r%d)"
                fname old base res )
      | None -> None)

let experiment m an ~instances =
  List.concat_map
    (fun kind ->
      let rec collect seed found acc =
        if found >= instances || seed > 200 then List.rev acc
        else
          match inject m an kind ~seed with
          | Some (buggy, desc) ->
              let caught = not (Tyck.check_ok m buggy) in
              collect (seed + 1) (found + 1) ((kind, desc, caught) :: acc)
          | None -> collect (seed + 1) found acc
      in
      collect 0 0 [])
    all_kinds

(* ---------- pool-safety certificate bugs ---------- *)

open Sva_safety

type pool_bug =
  | Confuse_merge
  | Drop_escape
  | Stale_find
  | Wrong_tau
  | Drop_member
  | Bogus_devirt

let pool_bug_name = function
  | Confuse_merge -> "type-confusing pool merge"
  | Drop_escape -> "dropped escape-frontier edge"
  | Stale_find -> "stale unification find"
  | Wrong_tau -> "wrong homogeneous type"
  | Drop_member -> "missing membership witness site"
  | Bogus_devirt -> "bogus devirtualization target"

let all_pool_bugs =
  [ Confuse_merge; Drop_escape; Stale_find; Wrong_tau; Drop_member;
    Bogus_devirt ]

let copy_pool_bundle (b : Poolev.bundle) : Poolev.bundle =
  {
    Poolev.pb_value_mp = Hashtbl.copy b.Poolev.pb_value_mp;
    pb_global_mp = Hashtbl.copy b.Poolev.pb_global_mp;
    pb_fn_mp = Hashtbl.copy b.Poolev.pb_fn_mp;
    pb_ret_mp = Hashtbl.copy b.Poolev.pb_ret_mp;
    pb_succ = Hashtbl.copy b.Poolev.pb_succ;
    pb_th = b.Poolev.pb_th;
    pb_comp = b.Poolev.pb_comp;
    pb_elisions = b.Poolev.pb_elisions;
    pb_dv = b.Poolev.pb_dv;
  }

(* Rewire every membership/edge reference of [src] to [dst] — the shape a
   buggy unification pass would leave behind. *)
let redirect_mp (b : Poolev.bundle) ~src ~dst =
  let swap tbl =
    let moved = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
    List.iter
      (fun (k, v) -> if v = src then Hashtbl.replace tbl k dst)
      moved
  in
  swap b.Poolev.pb_value_mp;
  swap b.Poolev.pb_global_mp;
  swap b.Poolev.pb_fn_mp;
  swap b.Poolev.pb_ret_mp;
  let edges = Hashtbl.fold (fun k v acc -> (k, v) :: acc) b.Poolev.pb_succ [] in
  Hashtbl.reset b.Poolev.pb_succ;
  List.iter
    (fun (k, v) ->
      let k = if k = src then dst else k in
      let v = if v = src then dst else v in
      Hashtbl.replace b.Poolev.pb_succ k v)
    edges

(* Geps whose base and result are both in the membership map: the sites
   where a stale find is locally checkable. *)
let bundle_gep_sites (m : Irmod.t) (b : Poolev.bundle) =
  List.concat_map
    (fun (f : Func.t) ->
      if Func.has_attr f Func.Noanalyze then []
      else
        Func.fold_instrs f
          (fun acc _ (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Gep (Value.Reg (bid, _, _), _)
              when Hashtbl.mem b.Poolev.pb_value_mp (f.Func.f_name, bid)
                   && Hashtbl.mem b.Poolev.pb_value_mp
                        (f.Func.f_name, i.Instr.id) ->
                (f.Func.f_name, i.Instr.id) :: acc
            | _ -> acc)
          []
        |> List.rev)
    m.Irmod.m_funcs

let pool_max_mp (b : Poolev.bundle) =
  let m = ref 0 in
  Hashtbl.iter (fun _ v -> if v > !m then m := v) b.Poolev.pb_value_mp;
  Hashtbl.iter
    (fun k v -> m := max !m (max k v))
    b.Poolev.pb_succ;
  List.iter
    (fun (c : Poolev.comp_cert) -> m := max !m c.Poolev.cc_mp)
    b.Poolev.pb_comp;
  !m

let pool_inject (m : Irmod.t) (b : Poolev.bundle) bug ~seed :
    (Poolev.bundle * string) option =
  let b' = copy_pool_bundle b in
  match bug with
  | Confuse_merge -> (
      (* merge two type-homogeneous pools of different types, the way a
         buggy unification would: all references of one pool rewired to
         the other, witnesses concatenated, the absorbed pool's
         certificates dropped *)
      let pairs =
        List.concat_map
          (fun (a : Poolev.th_cert) ->
            List.filter_map
              (fun (c : Poolev.th_cert) ->
                if
                  a.Poolev.tc_mp < c.Poolev.tc_mp
                  && not (Ty.equal a.Poolev.tc_ty c.Poolev.tc_ty)
                then Some (a, c)
                else None)
              b.Poolev.pb_th)
          b.Poolev.pb_th
      in
      match nth_opt pairs seed with
      | Some (keep, gone) ->
          redirect_mp b' ~src:gone.Poolev.tc_mp ~dst:keep.Poolev.tc_mp;
          b'.Poolev.pb_th <-
            List.filter_map
              (fun (c : Poolev.th_cert) ->
                if c.Poolev.tc_mp = gone.Poolev.tc_mp then None
                else if c.Poolev.tc_mp = keep.Poolev.tc_mp then
                  Some
                    { c with
                      Poolev.tc_members =
                        Poolev.sort_sites
                          (c.Poolev.tc_members @ gone.Poolev.tc_members)
                    }
                else Some c)
              b'.Poolev.pb_th;
          b'.Poolev.pb_comp <-
            List.filter
              (fun (c : Poolev.comp_cert) ->
                c.Poolev.cc_mp <> gone.Poolev.tc_mp)
              b'.Poolev.pb_comp;
          Some
            ( b',
              Printf.sprintf
                "MP%d (%s) confused into MP%d (%s) by a bogus merge"
                gone.Poolev.tc_mp
                (Ty.to_string gone.Poolev.tc_ty)
                keep.Poolev.tc_mp
                (Ty.to_string keep.Poolev.tc_ty) )
      | None -> None)
  | Drop_escape ->
      if seed mod 2 = 0 then (
        (* hide one site of an escape-frontier witness *)
        let entries =
          List.concat_map
            (fun (c : Poolev.comp_cert) ->
              List.map (fun s -> (c, s)) c.Poolev.cc_frontier)
            b.Poolev.pb_comp
        in
        match nth_opt entries (seed / 2) with
        | Some (cert, site) ->
            b'.Poolev.pb_comp <-
              List.map
                (fun (c : Poolev.comp_cert) ->
                  if c.Poolev.cc_mp = cert.Poolev.cc_mp then
                    { c with
                      Poolev.cc_frontier =
                        List.filter (fun s -> s <> site) c.Poolev.cc_frontier
                    }
                  else c)
                b'.Poolev.pb_comp;
            Some
              ( b',
                Printf.sprintf
                  "escape site @%s:%d dropped from MP%d's frontier witness"
                  site.Poolev.s_func site.Poolev.s_instr cert.Poolev.cc_mp )
        | None -> None)
      else
        (* claim an exposed pool complete *)
        let incomplete =
          List.filter
            (fun (c : Poolev.comp_cert) -> not c.Poolev.cc_complete)
            b.Poolev.pb_comp
        in
        (match nth_opt incomplete (seed / 2) with
        | Some cert ->
            b'.Poolev.pb_comp <-
              List.map
                (fun (c : Poolev.comp_cert) ->
                  if c.Poolev.cc_mp = cert.Poolev.cc_mp then
                    { c with Poolev.cc_complete = true }
                  else c)
                b'.Poolev.pb_comp;
            Some
              ( b',
                Printf.sprintf "exposed pool MP%d falsely claimed complete"
                  cert.Poolev.cc_mp )
        | None -> None)
  | Stale_find -> (
      (* a gep result left pointing at a partition that no longer exists —
         what a missed path-compression (stale find) would produce *)
      match nth_opt (bundle_gep_sites m b) seed with
      | Some (fname, res) ->
          let old = Hashtbl.find b'.Poolev.pb_value_mp (fname, res) in
          let bogus = pool_max_mp b + 1 + seed in
          Hashtbl.replace b'.Poolev.pb_value_mp (fname, res) bogus;
          Some
            ( b',
              Printf.sprintf
                "@%s: gep result r%d left in stale partition (was MP%d)"
                fname res old )
      | None -> None)
  | Wrong_tau -> (
      match nth_opt b.Poolev.pb_th seed with
      | Some cert ->
          let bogus =
            if Ty.equal cert.Poolev.tc_ty Ty.i64 then Ty.i32 else Ty.i64
          in
          b'.Poolev.pb_th <-
            List.map
              (fun (c : Poolev.th_cert) ->
                if c.Poolev.tc_mp = cert.Poolev.tc_mp then
                  { c with Poolev.tc_ty = bogus }
                else c)
              b'.Poolev.pb_th;
          Some
            ( b',
              Printf.sprintf
                "MP%d's homogeneous type forged as %s (really %s)"
                cert.Poolev.tc_mp (Ty.to_string bogus)
                (Ty.to_string cert.Poolev.tc_ty) )
      | None -> None)
  | Drop_member -> (
      let entries =
        List.concat_map
          (fun (c : Poolev.th_cert) ->
            List.map (fun s -> (c, s)) c.Poolev.tc_members)
          b.Poolev.pb_th
      in
      match nth_opt entries seed with
      | Some (cert, site) ->
          b'.Poolev.pb_th <-
            List.map
              (fun (c : Poolev.th_cert) ->
                if c.Poolev.tc_mp = cert.Poolev.tc_mp then
                  { c with
                    Poolev.tc_members =
                      List.filter (fun s -> s <> site) c.Poolev.tc_members
                  }
                else c)
              b'.Poolev.pb_th;
          Some
            ( b',
              Printf.sprintf
                "access @%s:%d dropped from MP%d's membership witness"
                site.Poolev.s_func site.Poolev.s_instr cert.Poolev.tc_mp )
      | None -> None)
  | Bogus_devirt ->
      let bogus = Printf.sprintf "__sva_bogus_target%d" seed in
      (match b.Poolev.pb_dv with
      | [] ->
          (* no devirtualized sites: fabricate a certificate for one *)
          let fname =
            match
              List.find_opt
                (fun (f : Func.t) -> not (Func.has_attr f Func.Noanalyze))
                m.Irmod.m_funcs
            with
            | Some f -> f.Func.f_name
            | None -> "<none>"
          in
          b'.Poolev.pb_dv <-
            [ { Poolev.dc_func = fname; dc_instr = 999000 + seed; dc_mp = 0;
                dc_targets = [ bogus ] } ];
          Some
            ( b',
              Printf.sprintf
                "fabricated devirtualization certificate @%s targeting '%s'"
                fname bogus )
      | dvs ->
          let cert = List.nth dvs (seed mod List.length dvs) in
          b'.Poolev.pb_dv <-
            List.map
              (fun (c : Poolev.dv_cert) ->
                if
                  c.Poolev.dc_func = cert.Poolev.dc_func
                  && c.Poolev.dc_instr = cert.Poolev.dc_instr
                then
                  { c with Poolev.dc_targets = bogus :: c.Poolev.dc_targets }
                else c)
              b'.Poolev.pb_dv;
          Some
            ( b',
              Printf.sprintf
                "undefined target '%s' smuggled into the devirtualization \
                 of @%s:%d"
                bogus cert.Poolev.dc_func cert.Poolev.dc_instr ))

let pool_experiment ?config m (b : Poolev.bundle) ~instances =
  List.concat_map
    (fun bug ->
      let rec collect seed found acc =
        if found >= instances || seed > 200 then List.rev acc
        else
          match pool_inject m b bug ~seed with
          | Some (buggy, desc) ->
              let caught = not (Poolcert.check_ok ?config m buggy) in
              collect (seed + 1) (found + 1) ((bug, desc, caught) :: acc)
          | None -> collect (seed + 1) found acc
      in
      collect 0 0 [])
    all_pool_bugs
