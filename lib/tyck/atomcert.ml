(* The trusted atomicity-certificate checker — the Section 5 discipline
   applied to concurrency proofs.

   {!Sva_analysis.Lockset} is a complex interprocedural analysis and
   stays outside the TCB.  Everything it discharges arrives here as a
   certificate bundle: per-function claimed block-entry facts plus
   per-access protection claims.  This module re-verifies the bundle
   with purely local rules:

   - every claimed block fact must be an inductive invariant: replaying
     the block from its claim must justify each successor's claim;
   - every entry claim must be justified by each possible entry: the
     trusted root configuration, every direct call site (replayed from
     the *caller's* checked claims), a worst-case unprotected entry for
     address-taken functions, and a worst-case entry for calls from
     uncertified callers;
   - every access certificate must name a real load/store of the
     claimed global, and its protection claim must be justified by the
     replayed fact at that instruction.

   The checker re-derives control flow, call sites and address escapes
   itself and shares only the one-instruction transfer kernel and the
   call-effect summaries with the producer — the same split Rangecert
   uses for interval arithmetic.

   One axiom matches the execution model: a *root* (interrupt or
   syscall handler in the trusted entry configuration) can be entered
   indirectly only through the SVM dispatcher, which establishes
   exactly the configured protection — so being address-taken does not
   weaken a root's entry.  {!Svaos} masks interrupts around handler
   dispatch by construction. *)

open Sva_ir
module L = Sva_analysis.Lockset

type error = { ae_func : string; ae_instr : int; ae_msg : string }

let string_of_error e =
  if e.ae_instr >= 0 then
    Printf.sprintf "%s: %%%d: %s" e.ae_func e.ae_instr e.ae_msg
  else Printf.sprintf "%s: %s" e.ae_func e.ae_msg

(* Claim [b] is at least as weak as truth bound [a] in the must-lattice
   (join order: fewer guarantees = higher). *)
let fact_leq a b = L.fact_equal (L.fact_join a b) b

let check ?(entries = fun _ -> None) (m : Irmod.t) (b : L.bundle) =
  let errors = ref [] in
  let err ?(instr = -1) fn msg =
    errors := { ae_func = fn; ae_instr = instr; ae_msg = msg } :: !errors
  in
  let effs = L.effects m in
  let defs_tbl = Hashtbl.create 64 in
  let defs_for (f : Func.t) =
    match Hashtbl.find_opt defs_tbl f.Func.f_name with
    | Some d -> d
    | None ->
        let d = L.defs_of f in
        Hashtbl.replace defs_tbl f.Func.f_name d;
        d
  in
  (* --- certificate well-formedness --- *)
  let claims : (string, (string, L.fact) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (fc : L.fcert) ->
      let fn = fc.L.fc_func in
      if Hashtbl.mem claims fn then err fn "duplicate function certificate"
      else
        match Irmod.find_func m fn with
        | None -> err fn "certificate for unknown function"
        | Some f when f.Func.f_blocks = [] ->
            err fn "certificate for bodyless function"
        | Some f ->
            let tbl = Hashtbl.create 16 in
            List.iter
              (fun (l, fact) ->
                if
                  not
                    (List.exists
                       (fun (blk : Func.block) -> blk.Func.label = l)
                       f.Func.f_blocks)
                then err fn ("claim for unknown block " ^ l)
                else if Hashtbl.mem tbl l then
                  err fn ("duplicate block claim " ^ l)
                else Hashtbl.replace tbl l fact)
              fc.L.fc_blocks;
            List.iter
              (fun (blk : Func.block) ->
                if not (Hashtbl.mem tbl blk.Func.label) then
                  err fn ("missing block claim " ^ blk.Func.label))
              f.Func.f_blocks;
            (* the entry certificate and the entry block's claim are the
               same statement; they must agree *)
            (match Hashtbl.find_opt tbl (Func.entry f).Func.label with
            | Some (L.Known p) when L.prot_equal p fc.L.fc_entry -> ()
            | Some _ ->
                err fn "entry block claim disagrees with entry certificate"
            | None -> ());
            Hashtbl.replace claims fn tbl)
    b.L.cb_fcerts;
  (* --- block-local inductiveness --- *)
  List.iter
    (fun (fc : L.fcert) ->
      match
        (Irmod.find_func m fc.L.fc_func, Hashtbl.find_opt claims fc.L.fc_func)
      with
      | Some f, Some tbl ->
          let defs = defs_for f in
          let cfg = Cfg.build f in
          List.iter
            (fun (blk : Func.block) ->
              match Hashtbl.find_opt tbl blk.Func.label with
              | None -> ()
              | Some fact ->
                  let out =
                    List.fold_left
                      (fun fct i -> L.step ~defs ~effs fct i)
                      fact blk.Func.insns
                  in
                  List.iter
                    (fun s ->
                      match Hashtbl.find_opt tbl s with
                      | Some claim_s when not (fact_leq out claim_s) ->
                          err fc.L.fc_func
                            (Printf.sprintf
                               "block %s out-fact does not justify claim at \
                                successor %s"
                               blk.Func.label s)
                      | _ -> ())
                    (Cfg.successors cfg blk.Func.label))
            f.Func.f_blocks
      | _ -> ())
    b.L.cb_fcerts;
  (* --- entry justification --- *)
  let address_taken = Hashtbl.create 32 in
  let note_fn = function
    | Value.Fn (n, _) -> Hashtbl.replace address_taken n ()
    | _ -> ()
  in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_instrs f (fun _ (i : Instr.t) ->
          let ops =
            match i.Instr.kind with
            | Instr.Call (Value.Fn _, args) -> args (* direct callee exempt *)
            | k -> Instr.operands k
          in
          List.iter note_fn ops);
      List.iter
        (fun (blk : Func.block) ->
          List.iter note_fn (Instr.term_operands blk.Func.term))
        f.Func.f_blocks)
    m.Irmod.m_funcs;
  let contribs : (string, L.fact) Hashtbl.t = Hashtbl.create 64 in
  let add_contrib n fact =
    let cur = Option.value (Hashtbl.find_opt contribs n) ~default:L.Unreached in
    Hashtbl.replace contribs n (L.fact_join cur fact)
  in
  List.iter
    (fun (f : Func.t) ->
      if f.Func.f_blocks <> [] then
        match Hashtbl.find_opt claims f.Func.f_name with
        | Some tbl ->
            (* replay the caller's checked claims to each call site *)
            let defs = defs_for f in
            List.iter
              (fun (blk : Func.block) ->
                let fact0 =
                  Option.value
                    (Hashtbl.find_opt tbl blk.Func.label)
                    ~default:L.Unreached
                in
                ignore
                  (List.fold_left
                     (fun fct (i : Instr.t) ->
                       (match i.Instr.kind with
                       | Instr.Call (Value.Fn (n, _), _) -> add_contrib n fct
                       | _ -> ());
                       L.step ~defs ~effs fct i)
                     fact0 blk.Func.insns))
              f.Func.f_blocks
        | None ->
            (* uncertified caller: assume the worst at every call *)
            Func.iter_instrs f (fun _ (i : Instr.t) ->
                match i.Instr.kind with
                | Instr.Call (Value.Fn (n, _), _) ->
                    add_contrib n (L.Known L.unprotected)
                | _ -> ()))
    m.Irmod.m_funcs;
  List.iter
    (fun (fc : L.fcert) ->
      let fn = fc.L.fc_func in
      let root = entries fn in
      let truth =
        ref (match root with Some p -> L.Known p | None -> L.Unreached)
      in
      (match Hashtbl.find_opt contribs fn with
      | Some c -> truth := L.fact_join !truth c
      | None -> ());
      (match root with
      | None when Hashtbl.mem address_taken fn ->
          truth := L.fact_join !truth (L.Known L.unprotected)
      | _ -> ());
      if not (fact_leq !truth (L.Known fc.L.fc_entry)) then
        err fn
          (Printf.sprintf "entry claim %s not justified (possible entry %s)"
             (L.prot_to_string fc.L.fc_entry)
             (match !truth with
             | L.Unreached -> "unreachable"
             | L.Known p -> L.prot_to_string p)))
    b.L.cb_fcerts;
  (* --- access certificates --- *)
  List.iter
    (fun (ac : L.acert) ->
      let fail msg = err ~instr:ac.L.ac_instr ac.L.ac_func msg in
      match
        (Irmod.find_func m ac.L.ac_func, Hashtbl.find_opt claims ac.L.ac_func)
      with
      | None, _ -> fail "access certificate for unknown function"
      | _, None -> fail "access certificate without function certificate"
      | Some f, Some tbl -> (
          let defs = defs_for f in
          let site = ref None in
          List.iter
            (fun (blk : Func.block) ->
              if Option.is_none !site then
                let fact0 =
                  Option.value
                    (Hashtbl.find_opt tbl blk.Func.label)
                    ~default:L.Unreached
                in
                ignore
                  (List.fold_left
                     (fun fct (i : Instr.t) ->
                       if Option.is_none !site && i.Instr.id = ac.L.ac_instr
                       then site := Some (i, fct);
                       L.step ~defs ~effs fct i)
                     fact0 blk.Func.insns))
            f.Func.f_blocks;
          match !site with
          | None -> fail "no such instruction"
          | Some (i, fct) -> (
              let addr =
                match i.Instr.kind with
                | Instr.Load a -> Some a
                | Instr.Store (_, a) -> Some a
                | _ -> None
              in
              match addr with
              | None -> fail "certified instruction is not a memory access"
              | Some a -> (
                  (match L.root_global defs a with
                  | Some g when g = ac.L.ac_global -> ()
                  | _ -> fail "certificate global does not match the access");
                  match fct with
                  | L.Unreached ->
                      fail "access claimed in a block with no entry fact"
                  | L.Known p ->
                      if not (L.prot_leq ac.L.ac_prot p) then
                        fail
                          (Printf.sprintf
                             "claimed protection %s not justified by fact %s"
                             (L.prot_to_string ac.L.ac_prot)
                             (L.prot_to_string p))))))
    b.L.cb_acerts;
  List.rev !errors

let check_ok ?entries m b = check ?entries m b = []

(* ---------- certificate-bug injection ---------- *)

type bug =
  | Claim_mask
  | Claim_lock
  | Inflate_block
  | Inflate_entry
  | Wrong_instr
  | Wrong_global

let all_bugs =
  [ Claim_mask; Claim_lock; Inflate_block; Inflate_entry; Wrong_instr;
    Wrong_global ]

let bug_name = function
  | Claim_mask -> "claim-mask"
  | Claim_lock -> "claim-lock"
  | Inflate_block -> "inflate-block"
  | Inflate_entry -> "inflate-entry"
  | Wrong_instr -> "wrong-instr"
  | Wrong_global -> "wrong-global"

(* Bundles are immutable values; the rebuild keeps API parity with
   {!Rangecert.copy_bundle} and guards against the representation ever
   growing mutable fields. *)
let copy_bundle (b : L.bundle) =
  {
    L.cb_fcerts =
      List.map
        (fun (fc : L.fcert) -> { fc with L.fc_blocks = List.map Fun.id fc.L.fc_blocks })
        b.L.cb_fcerts;
    cb_acerts = List.map (fun (a : L.acert) -> { a with L.ac_instr = a.L.ac_instr }) b.L.cb_acerts;
  }

let nth_candidate l seed =
  match l with [] -> None | _ -> Some (List.nth l (seed mod List.length l))

let replace_acert (b : L.bundle) (old : L.acert) (fresh : L.acert) =
  {
    (copy_bundle b) with
    L.cb_acerts =
      List.map
        (fun (a : L.acert) -> if a == old || a = old then fresh else a)
        b.L.cb_acerts;
  }

let replace_fcert (b : L.bundle) fn (fresh : L.fcert) =
  {
    (copy_bundle b) with
    L.cb_fcerts =
      List.map
        (fun (fc : L.fcert) -> if fc.L.fc_func = fn then fresh else fc)
        b.L.cb_fcerts;
  }

(* Every lock name the bundle mentions — the pool for phantom claims. *)
let lock_pool (b : L.bundle) =
  let pool = ref L.SS.empty in
  List.iter
    (fun (a : L.acert) -> pool := L.SS.union !pool a.L.ac_prot.L.p_locks)
    b.L.cb_acerts;
  List.iter
    (fun (fc : L.fcert) ->
      pool := L.SS.union !pool fc.L.fc_entry.L.p_locks;
      List.iter
        (function
          | _, L.Known p -> pool := L.SS.union !pool p.L.p_locks
          | _, L.Unreached -> ())
        fc.L.fc_blocks)
    b.L.cb_fcerts;
  L.SS.elements !pool

let inject (m : Irmod.t) (b : L.bundle) bug ~seed =
  match bug with
  | Claim_mask ->
      nth_candidate
        (List.filter
           (fun (a : L.acert) -> not a.L.ac_prot.L.p_masked)
           b.L.cb_acerts)
        seed
      |> Option.map (fun (a : L.acert) ->
             ( replace_acert b a
                 { a with L.ac_prot = { a.L.ac_prot with L.p_masked = true } },
               Printf.sprintf "acert %s/%%%d claims interrupts masked"
                 a.L.ac_func a.L.ac_instr ))
  | Claim_lock ->
      let pool = lock_pool b in
      nth_candidate b.L.cb_acerts seed
      |> Option.map (fun (a : L.acert) ->
             let phantom =
               match
                 List.find_opt
                   (fun l -> not (L.SS.mem l a.L.ac_prot.L.p_locks))
                   pool
               with
               | Some l -> l
               | None -> "__phantom_lock"
             in
             ( replace_acert b a
                 {
                   a with
                   L.ac_prot =
                     {
                       a.L.ac_prot with
                       L.p_locks = L.SS.add phantom a.L.ac_prot.L.p_locks;
                     };
                 },
               Printf.sprintf "acert %s/%%%d claims phantom lock %s"
                 a.L.ac_func a.L.ac_instr phantom ))
  | Inflate_block ->
      let candidates =
        List.concat_map
          (fun (fc : L.fcert) ->
            let entry_label =
              match Irmod.find_func m fc.L.fc_func with
              | Some f -> (Func.entry f).Func.label
              | None -> ""
            in
            List.filter_map
              (function
                | l, L.Known p
                  when (not p.L.p_masked) && l <> entry_label ->
                    Some (fc, l)
                | _ -> None)
              fc.L.fc_blocks)
          b.L.cb_fcerts
      in
      nth_candidate candidates seed
      |> Option.map (fun ((fc : L.fcert), label) ->
             let blocks =
               List.map
                 (function
                   | l, L.Known p when l = label ->
                       (l, L.Known { p with L.p_masked = true })
                   | x -> x)
                 fc.L.fc_blocks
             in
             ( replace_fcert b fc.L.fc_func { fc with L.fc_blocks = blocks },
               Printf.sprintf "block claim %s/%s inflated to masked"
                 fc.L.fc_func label ))
  | Inflate_entry ->
      nth_candidate
        (List.filter
           (fun (fc : L.fcert) -> not fc.L.fc_entry.L.p_masked)
           b.L.cb_fcerts)
        seed
      |> Option.map (fun (fc : L.fcert) ->
             let entry_label =
               match Irmod.find_func m fc.L.fc_func with
               | Some f -> (Func.entry f).Func.label
               | None -> ""
             in
             let entry' = { fc.L.fc_entry with L.p_masked = true } in
             (* keep the duplicate entry statement consistent so the
                dataflow rule, not the well-formedness rule, must fire *)
             let blocks =
               List.map
                 (function
                   | l, _ when l = entry_label -> (l, L.Known entry')
                   | x -> x)
                 fc.L.fc_blocks
             in
             ( replace_fcert b fc.L.fc_func
                 { fc with L.fc_entry = entry'; L.fc_blocks = blocks },
               Printf.sprintf "entry claim of %s inflated to masked"
                 fc.L.fc_func ))
  | Wrong_instr ->
      let candidates =
        List.filter_map
          (fun (a : L.acert) ->
            match Irmod.find_func m a.L.ac_func with
            | None -> None
            | Some f ->
                let alt = ref None in
                Func.iter_instrs f (fun _ (i : Instr.t) ->
                    if Option.is_none !alt && i.Instr.id <> a.L.ac_instr then
                      let defs = L.defs_of f in
                      let same_shape =
                        match i.Instr.kind with
                        | Instr.Load addr | Instr.Store (_, addr) ->
                            L.root_global defs addr = Some a.L.ac_global
                        | _ -> false
                      in
                      (* a different access to the same global could be
                         legitimately certified; pick a site the checker
                         must reject *)
                      if not same_shape then alt := Some i.Instr.id);
                Option.map (fun id -> (a, id)) !alt)
          b.L.cb_acerts
      in
      nth_candidate candidates seed
      |> Option.map (fun ((a : L.acert), id) ->
             ( replace_acert b a { a with L.ac_instr = id },
               Printf.sprintf "acert %s/%%%d rewired to %%%d" a.L.ac_func
                 a.L.ac_instr id ))
  | Wrong_global ->
      let pool =
        List.sort_uniq compare
          (List.map (fun (a : L.acert) -> a.L.ac_global) b.L.cb_acerts)
      in
      nth_candidate b.L.cb_acerts seed
      |> Option.map (fun (a : L.acert) ->
             let g =
               match List.find_opt (fun g -> g <> a.L.ac_global) pool with
               | Some g -> g
               | None -> "__no_such_global"
             in
             ( replace_acert b a { a with L.ac_global = g },
               Printf.sprintf "acert %s/%%%d retargeted to global %s"
                 a.L.ac_func a.L.ac_instr g ))

let experiment ?entries (m : Irmod.t) (b : L.bundle) ~instances =
  List.concat_map
    (fun bug ->
      let seen = Hashtbl.create 8 in
      let out = ref [] in
      let seed = ref 0 in
      while List.length !out < instances && !seed < instances * 10 do
        (match inject m b bug ~seed:!seed with
        | Some (bb, desc) when not (Hashtbl.mem seen desc) ->
            Hashtbl.replace seen desc ();
            out := (bug, desc, not (check_ok ?entries m bb)) :: !out
        | _ -> ());
        incr seed
      done;
      List.rev !out)
    all_bugs
