(** The trusted atomicity-certificate checker (Section 5 discipline
    applied to concurrency proofs).

    {!Sva_analysis.Lockset} is a complex, interprocedural, untrusted
    analysis; every race obligation it discharges is backed by a
    certificate — claimed block-entry protection facts per function plus
    a protection claim per shared access.  This module re-verifies the
    whole bundle with purely local rules: block claims must be inductive
    under the one-instruction transfer kernel, entry claims must be
    justified by the trusted root configuration and by every direct call
    site (replayed from the caller's own checked claims; address-taken
    non-roots and calls from uncertified callers are assumed worst-case
    unprotected), and each access certificate must name a real
    load/store of the claimed global whose replayed fact justifies the
    claim.  Only this checker and the shared transfer kernel are in the
    TCB — exactly the {!Rangecert} split.

    {!inject} perturbs certificate bundles with six bug kinds; {!check}
    must reject every one of them. *)

open Sva_ir
module L = Sva_analysis.Lockset

type error = {
  ae_func : string;
  ae_instr : int;  (** instruction id; -1 for function-level errors *)
  ae_msg : string;
}

val string_of_error : error -> string

val check :
  ?entries:(string -> L.prot option) -> Irmod.t -> L.bundle -> error list
(** Verify every function certificate and access certificate in the
    bundle.  [entries] must be the trusted root configuration the
    analysis ran with ({!Sva_analysis.Lockset.entry_config}): handlers
    invoked by the SVM dispatcher and the boundary protection the
    dispatcher establishes.  An empty result means every discharged
    atomicity obligation is justified. *)

val check_ok : ?entries:(string -> L.prot option) -> Irmod.t -> L.bundle -> bool

(** {1 Certificate-bug injection}

    Each injector perturbs a {e copy} of the bundle at a concrete site
    (deterministically selected by [seed]) in a way that makes it
    unsound or ill-formed, and the checker must reject it. *)

type bug =
  | Claim_mask  (** an access claims interrupts masked where they are not *)
  | Claim_lock  (** an access claims a lock it does not hold *)
  | Inflate_block  (** a block-entry claim strengthened beyond the fixpoint *)
  | Inflate_entry  (** a function entry claim stronger than its entries *)
  | Wrong_instr  (** an access certificate rewired to another instruction *)
  | Wrong_global  (** an access certificate naming the wrong global *)

val bug_name : bug -> string
val all_bugs : bug list

val copy_bundle : L.bundle -> L.bundle
(** Injection never mutates the original bundle. *)

val inject : Irmod.t -> L.bundle -> bug -> seed:int -> (L.bundle * string) option
(** Produce a buggy bundle copy and a description of the injected bug,
    or [None] if no suitable site exists. *)

val experiment :
  ?entries:(string -> L.prot option) ->
  Irmod.t ->
  L.bundle ->
  instances:int ->
  (bug * string * bool) list
(** For each bug kind, inject up to [instances] distinct bugs and
    report, per injection, whether {!check} caught it.  All entries
    should be [true]. *)
