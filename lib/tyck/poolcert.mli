(** The trusted pool-safety certificate checker (Section 5 discipline
    applied to the points-to layer).

    {!Sva_analysis.Pointsto} and {!Sva_safety.Devirt} are complex,
    interprocedural, untrusted analyses; every run-time check the
    verifier elides on their word — load/store checks skipped on
    type-homogeneous pools, "reduced checks" on incomplete pools, and
    indirect-call checks removed by devirtualization — is backed by an
    explicit certificate in a {!Sva_safety.Poolev.bundle}.  This module
    re-verifies the whole bundle against an independent scan of the
    (instrumented) IR, so neither analysis needs to be trusted:

    - {e membership}: the per-value metapool maps must satisfy the same
      purely local flow rules {!Tyck.check} enforces (gep preserves
      pool, phi/select never mix pools, loads/stores follow the pool's
      points-to edge, direct calls match callee qualifiers);
    - {e type homogeneity}: for each TH certificate the checker re-scans
      every load, store, gep, allocation and global of the pool and
      confirms all type evidence agrees with the claimed type, that at
      least one piece of evidence exists, that the witness's member list
      equals the checker's own use scan in both directions, that the
      pool never reaches the escape frontier, and that no
      memcpy/user-copy call could have collapsed it;
    - {e completeness}: the checker re-derives the escape frontier
      (arguments to and results of unanalyzed external calls,
      manufactured and untracked int-to-pointer casts, with the same
      call classification the analysis uses: allocators, copy and
      user-copy functions, known externs, SVA-OS operations and resolved
      internal syscalls do not leak), re-seeds userspace exposure from
      the registered syscall handlers, closes the seeds over the pool
      points-to edges, and requires every completeness certificate's
      verdict to match exactly — a pool falsely claimed complete loses
      its full checks elsewhere, and a pool falsely claimed incomplete
      silently drops to reduced checks, so both directions are errors —
      and its recorded frontier to equal the checker's site set;
    - {e elisions}: every recorded elision must name a real site of the
      right shape (a load/store/atomic for [lscheck] elisions, an
      indirect call for [funccheck] elisions) whose pointer maps to the
      named pool, backed by the matching certificate kind;
    - {e devirtualization}: every certificate must name a complete pool,
      its rewritten dispatch blocks must exist and test exactly the
      claimed target set, every target must be a defined function of the
      callee's signature, the target set must cover every address-taken
      signature-compatible function the checker finds, and every
      generated trap block must be covered by a certificate.

    Known over-approximations (they can reject sound bundles, never
    accept unsound ones the rules cover): direct calls to a declared
    allocator size function are never treated as escapes (the verifier
    inserts such calls after analysis), and a user-copy call whose peer
    pool has no type evidence blocks TH certificates on both sides.

    {!Inject} extends this with pool-certificate bug injection; every
    injected bug must be rejected here. *)

open Sva_ir
open Sva_analysis
open Sva_safety

type error = {
  pe_func : string;
  pe_instr : int;  (** instruction id; -1 for certificate-level errors *)
  pe_msg : string;
}

val string_of_error : error -> string

val check : ?config:Pointsto.config -> Irmod.t -> Poolev.bundle -> error list
(** Verify every membership fact, certificate and elision record in the
    bundle against the given module (normally the instrumented module
    the pipeline just produced).  [config] must be the same porting
    configuration the analysis ran with — the allocator, copy-function
    and syscall declarations are part of the trusted porting step
    (Section 4.4) and decide how the checker classifies call sites.
    An empty result means every points-to-justified elision is
    independently justified. *)

val check_ok : ?config:Pointsto.config -> Irmod.t -> Poolev.bundle -> bool
