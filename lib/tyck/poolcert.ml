(* Trusted pool-safety certificate checker.  Re-verifies the Poolev
   bundle produced by the untrusted points-to/devirt layer against an
   independent scan of the instrumented IR: membership maps via the same
   local rules as Tyck, type-homogeneity witnesses against a fresh
   evidence and use scan, completeness verdicts against a re-derived
   escape frontier closed over the pool points-to edges, and
   devirtualization certificates against the generated dispatch blocks
   and the module's address-taken functions. *)

open Sva_ir
open Sva_analysis
open Sva_safety
module P = Pointsto

type error = { pe_func : string; pe_instr : int; pe_msg : string }

let string_of_error e =
  Printf.sprintf "@%s:%d: %s" e.pe_func e.pe_instr e.pe_msg

module SiteSet = Set.Make (struct
  type t = string * int

  let compare = compare
end)

(* Mirror of the analysis's node_of creation rule: which values carry a
   partition at all.  Only used where the analysis creates nodes on
   demand (inttoptr of a tracked integer); everywhere else the bundle's
   membership tables are the mirror of the final node environment. *)
let tracked_value (cfg : P.config) (v : Value.t) =
  match v with
  | Value.Reg (_, Ty.Ptr _, _) | Value.Global _ | Value.Fn _ -> true
  | Value.Reg (_, Ty.Int 64, _) -> cfg.P.track_int_ptrs
  | _ -> false

let reduce_ty = function Ty.Array (e, _) -> e | t -> t

(* Per-metapool accumulator table. *)
let tbl_add tbl key v =
  let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (v :: prev)

let label_is_dv_test ~prefix label =
  let p = prefix ^ ".t" in
  let pl = String.length p in
  String.length label > pl
  && String.sub label 0 pl = p
  && String.for_all
       (fun c -> c >= '0' && c <= '9')
       (String.sub label pl (String.length label - pl))

let check ?(config = P.default_config) (m : Irmod.t) (b : Poolev.bundle) :
    error list =
  let errors = ref [] in
  let err fname instr fmt =
    Printf.ksprintf
      (fun s ->
        errors := { pe_func = fname; pe_instr = instr; pe_msg = s } :: !errors)
      fmt
  in
  let cert_err fmt = err "<bundle>" (-1) fmt in
  let mp fname v = Poolev.mp_of_value b fname v in
  let trusted = Tyck.trusted_of_config config in
  let analyzed name =
    match Irmod.find_func m name with
    | Some f -> not (Func.has_attr f Func.Noanalyze)
    | None -> false
  in

  (* ---- certificate indexes (uniqueness is structural) ---- *)
  let comp_tbl : (int, Poolev.comp_cert) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (c : Poolev.comp_cert) ->
      if Hashtbl.mem comp_tbl c.Poolev.cc_mp then
        cert_err "duplicate completeness certificate for MP%d" c.Poolev.cc_mp
      else Hashtbl.replace comp_tbl c.Poolev.cc_mp c)
    b.Poolev.pb_comp;
  let th_tbl : (int, Poolev.th_cert) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (c : Poolev.th_cert) ->
      if Hashtbl.mem th_tbl c.Poolev.tc_mp then
        cert_err "duplicate type-homogeneity certificate for MP%d"
          c.Poolev.tc_mp
      else Hashtbl.replace th_tbl c.Poolev.tc_mp c)
    b.Poolev.pb_th;
  (* Every metapool the membership maps mention must carry a verdict. *)
  let require_comp mpi =
    if not (Hashtbl.mem comp_tbl mpi) then
      cert_err "MP%d referenced by the membership maps has no completeness \
                certificate"
        mpi
  in
  let seen_mp = Hashtbl.create 64 in
  let note_mp mpi =
    if not (Hashtbl.mem seen_mp mpi) then begin
      Hashtbl.replace seen_mp mpi ();
      require_comp mpi
    end
  in
  Hashtbl.iter (fun _ mpi -> note_mp mpi) b.Poolev.pb_value_mp;
  Hashtbl.iter (fun _ mpi -> note_mp mpi) b.Poolev.pb_global_mp;
  Hashtbl.iter (fun _ mpi -> note_mp mpi) b.Poolev.pb_fn_mp;
  Hashtbl.iter (fun _ mpi -> note_mp mpi) b.Poolev.pb_ret_mp;
  Hashtbl.iter
    (fun a s ->
      note_mp a;
      note_mp s)
    b.Poolev.pb_succ;

  (* ---- membership: the same local rules Tyck enforces ---- *)
  let an =
    {
      Tyck.an_value_mp = b.Poolev.pb_value_mp;
      an_global_mp = b.Poolev.pb_global_mp;
      an_fn_mp = b.Poolev.pb_fn_mp;
      an_ret_mp = b.Poolev.pb_ret_mp;
      an_succ = b.Poolev.pb_succ;
      an_th =
        (let t = Hashtbl.create 16 in
         Hashtbl.iter
           (fun mpi (c : Poolev.th_cert) ->
             Hashtbl.replace t mpi c.Poolev.tc_ty)
           th_tbl;
         t);
    }
  in
  List.iter
    (fun (e : Tyck.error) ->
      errors :=
        { pe_func = e.Tyck.te_func; pe_instr = e.Tyck.te_instr;
          pe_msg = e.Tyck.te_msg }
        :: !errors)
    (Tyck.check ~trusted m an);

  (* ---- the syscall table, re-derived ---- *)
  let syscalls : (int, string) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) ->
      if not (Func.has_attr f Func.Noanalyze) then
        Func.iter_instrs f (fun _ (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Call
                (Value.Fn (name, _), [ Value.Imm (_, num); Value.Fn (h, _) ])
              when Some name = config.P.syscall_register ->
                Hashtbl.replace syscalls (Int64.to_int num) h
            | Instr.Intrinsic (name, [ Value.Imm (_, num); Value.Fn (h, _) ])
              when Some name = config.P.syscall_register ->
                Hashtbl.replace syscalls (Int64.to_int num) h
            | _ -> ()))
    m.Irmod.m_funcs;

  (* ---- the independent IR scan ---- *)
  (* per metapool *)
  let uses : (int, (string * int) list) Hashtbl.t = Hashtbl.create 64 in
  (* load/store/atomic sites only: the ones an lscheck elision can name *)
  let ls_sites : (string * int, int) Hashtbl.t = Hashtbl.create 256 in
  let evid : (int, (Ty.t * string * int) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let esc : (int, SiteSet.t) Hashtbl.t = Hashtbl.create 64 in
  let esc_add mpi site =
    let prev =
      Option.value ~default:SiteSet.empty (Hashtbl.find_opt esc mpi)
    in
    Hashtbl.replace esc mpi (SiteSet.add site prev)
  in
  let copy_blocked : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let block_th mpi why =
    if not (Hashtbl.mem copy_blocked mpi) then
      Hashtbl.replace copy_blocked mpi why
  in
  (* user-copy calls with both sides in a pool: resolved after the scan,
     once the evidence table is complete *)
  let user_copy_pairs = ref [] in
  let userspace_seeds = ref [] in
  let indirect_sites : (string * int, int) Hashtbl.t = Hashtbl.create 32 in
  let address_taken : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let take fn = Hashtbl.replace address_taken fn () in
  List.iter
    (fun (g : Irmod.global) ->
      match g.Irmod.g_init with
      | Irmod.Ptrs syms ->
          List.iter
            (fun s ->
              if Irmod.find_func m s <> None || Irmod.extern_ty m s <> None
              then take s)
            syms
      | _ -> ())
    m.Irmod.m_globals;
  List.iter
    (fun (f : Func.t) ->
      if Func.has_attr f Func.Noanalyze then ()
      else begin
        let fname = f.Func.f_name in
        (* interior recomputation: same single forward pass as Tyck *)
        let interior = Hashtbl.create 16 in
        let is_interior = function
          | Value.Reg (id, _, _) -> Hashtbl.mem interior id
          | _ -> false
        in
        let use site ptr ~ls =
          match mp fname ptr with
          | Some mpi ->
              tbl_add uses mpi site;
              if ls then Hashtbl.replace ls_sites site mpi
          | None -> ()
        in
        let evidence site v ty =
          match mp fname v with
          | Some mpi ->
              let sf, si = site in
              tbl_add evid mpi (reduce_ty ty, sf, si)
          | None -> ()
        in
        let escape site v =
          match mp fname v with Some mpi -> esc_add mpi site | None -> ()
        in
        let escape_result site (i : Instr.t) =
          match Instr.result i with
          | Some r -> (
              match mp fname r with
              | Some mpi -> esc_add mpi site
              | None ->
                  err fname i.Instr.id
                    "escaping result carries no metapool qualifier")
          | None -> ()
        in
        Func.iter_instrs f (fun _ (i : Instr.t) ->
            let site = (fname, i.Instr.id) in
            (* address-taken functions: any Fn operand outside the callee
               position of a direct call *)
            (match i.Instr.kind with
            | Instr.Call (Value.Fn (_, _), args) ->
                List.iter
                  (function Value.Fn (n, _) -> take n | _ -> ())
                  args
            | k ->
                List.iter
                  (function Value.Fn (n, _) -> take n | _ -> ())
                  (Instr.operands k));
            match i.Instr.kind with
            | Instr.Load p ->
                use site p ~ls:true;
                if not (is_interior p) then
                  evidence site p (Ty.pointee (Value.ty p))
            | Instr.Store (_, p) ->
                use site p ~ls:true;
                if not (is_interior p) then
                  evidence site p (Ty.pointee (Value.ty p))
            | Instr.Atomic_cas (p, _, _) | Instr.Atomic_add (p, _) ->
                use site p ~ls:true
            | Instr.Gep (base, idxs) ->
                use site base ~ls:false;
                if not (is_interior base) then
                  evidence site base (Ty.pointee (Value.ty base));
                if
                  P.gep_enters_struct m.Irmod.m_ctx (Value.ty base) idxs
                  || is_interior base
                then Hashtbl.replace interior i.Instr.id ()
            | Instr.Cast ((Instr.Bitcast | Instr.Ptrtoint), x, _) ->
                if is_interior x then Hashtbl.replace interior i.Instr.id ()
            | Instr.Cast (Instr.Inttoptr, x, _) -> (
                match x with
                | Value.Imm (_, v)
                  when config.P.null_small_int_casts
                       && (Int64.abs v < 4096L || Int64.equal v (-1L)) ->
                    ()
                | Value.Imm (_, _) -> escape_result site i
                | x -> if not (tracked_value config x) then escape_result site i)
            | Instr.Alloca (ty, _) -> (
                match Instr.result i with
                | Some r -> evidence site r ty
                | None -> ())
            | Instr.Malloc (ty, _) -> (
                match Instr.result i with
                | Some r when not (Ty.equal ty Ty.i8) -> evidence site r ty
                | _ -> ())
            | Instr.Intrinsic
                (("sva_pseudo_alloc" | "pchk_pseudo_alloc"), _) -> (
                match Instr.result i with
                | Some r -> evidence site r Ty.i8
                | None -> ())
            | Instr.Intrinsic ("sva_user_base", _) -> (
                match Instr.result i with
                | Some r -> (
                    evidence site r Ty.i8;
                    match mp fname r with
                    | Some mpi -> userspace_seeds := mpi :: !userspace_seeds
                    | None -> ())
                | None -> ())
            | Instr.Call (Value.Fn (name, _), args) ->
                if Allocdecl.find config.P.allocators name <> None then ()
                else if Allocdecl.find_free config.P.allocators name <> None
                then ()
                else if List.mem name config.P.user_copy_functions then (
                  match args with
                  | dst :: src :: _ -> (
                      match (mp fname dst, mp fname src) with
                      | Some a, None | None, Some a ->
                          block_th a
                            (Printf.sprintf
                               "collapsed by a one-sided '%s' copy at \
                                @%s:%d"
                               name fname i.Instr.id)
                      | Some a, Some bmp ->
                          user_copy_pairs :=
                            (site, name, a, bmp) :: !user_copy_pairs
                      | None, None -> ())
                  | _ -> ())
                else if List.mem name config.P.copy_functions then (
                  match args with
                  | dst :: src :: _ -> (
                      match (mp fname dst, mp fname src) with
                      | Some a, None | None, Some a ->
                          block_th a
                            (Printf.sprintf
                               "collapsed by a one-sided '%s' copy at \
                                @%s:%d"
                               name fname i.Instr.id)
                      | _ -> ())
                  | _ -> ())
                else if Some name = config.P.syscall_register then ()
                else if Some name = config.P.syscall_invoke then (
                  match args with
                  | Value.Imm (_, num) :: rest ->
                      if not (Hashtbl.mem syscalls (Int64.to_int num)) then begin
                        List.iter (escape site) rest;
                        escape_result site i
                      end
                  | _ ->
                      List.iter (escape site) args;
                      escape_result site i)
                else if List.mem name config.P.known_externs then ()
                else if P.is_sva_name name then ()
                else if List.mem name trusted then
                  (* declared allocator size functions: the verifier
                     inserts calls to them after the analysis ran *)
                  ()
                else if analyzed name then ()
                else begin
                  List.iter (escape site) args;
                  escape_result site i
                end
            | Instr.Call (callee, _) -> (
                (* indirect call *)
                match mp fname callee with
                | Some mpi -> Hashtbl.replace indirect_sites site mpi
                | None -> ())
            | _ -> ())
      end)
    m.Irmod.m_funcs;

  (* userspace exposure: pointer parameters of registered syscall
     handlers (Section 4.6) *)
  Hashtbl.iter
    (fun _ h ->
      match Irmod.find_func m h with
      | None -> ()
      | Some hf ->
          List.iteri
            (fun idx (_, pty) ->
              if Ty.is_pointer pty then
                match Hashtbl.find_opt b.Poolev.pb_value_mp (h, idx) with
                | Some mpi -> userspace_seeds := mpi :: !userspace_seeds
                | None -> ())
            hf.Func.f_params)
    syscalls;

  (* user-copy pairs: without type evidence on both sides the analysis
     collapses both pools (handle_user_copy), so a TH claim on either is
     unverifiable *)
  List.iter
    (fun ((sf, si), name, a, bmp) ->
      let has_evid mpi =
        match Hashtbl.find_opt evid mpi with
        | Some (_ :: _) -> true
        | _ -> false
      in
      if not (has_evid a && has_evid bmp) then begin
        let why =
          Printf.sprintf
            "'%s' copy at @%s:%d lacks type evidence on one side" name sf si
        in
        block_th a why;
        block_th bmp why
      end)
    !user_copy_pairs;

  (* ---- completeness: seeds closed over the points-to edges ---- *)
  let expected_incomplete = Hashtbl.create 64 in
  let worklist = ref [] in
  let seed mpi =
    if not (Hashtbl.mem expected_incomplete mpi) then begin
      Hashtbl.replace expected_incomplete mpi ();
      worklist := mpi :: !worklist
    end
  in
  Hashtbl.iter (fun mpi sites -> if not (SiteSet.is_empty sites) then seed mpi) esc;
  if not config.P.userspace_valid then List.iter seed !userspace_seeds;
  while !worklist <> [] do
    match !worklist with
    | [] -> ()
    | mpi :: rest -> (
        worklist := rest;
        match Hashtbl.find_opt b.Poolev.pb_succ mpi with
        | Some s -> seed s
        | None -> ())
  done;
  Hashtbl.iter
    (fun mpi (c : Poolev.comp_cert) ->
      let inc = Hashtbl.mem expected_incomplete mpi in
      if c.Poolev.cc_complete && inc then
        cert_err
          "MP%d claimed complete but the partition is exposed (escape or \
           userspace reachability)"
          mpi
      else if (not c.Poolev.cc_complete) && not inc then
        cert_err
          "MP%d claimed incomplete (reduced checks) but no escape reaches it"
          mpi;
      (* frontier witness must equal the checker's site set *)
      let found =
        Option.value ~default:SiteSet.empty (Hashtbl.find_opt esc mpi)
      in
      let listed =
        List.fold_left
          (fun s (st : Poolev.site) ->
            SiteSet.add (st.Poolev.s_func, st.Poolev.s_instr) s)
          SiteSet.empty c.Poolev.cc_frontier
      in
      SiteSet.iter
        (fun (sf, si) ->
          if not (SiteSet.mem (sf, si) listed) then
            err sf si "escape site missing from MP%d's frontier witness" mpi)
        found;
      SiteSet.iter
        (fun (sf, si) ->
          if not (SiteSet.mem (sf, si) found) then
            err sf si "frontier witness lists a site that does not expose MP%d"
              mpi)
        listed)
    comp_tbl;

  (* ---- type-homogeneity certificates ---- *)
  Hashtbl.iter
    (fun mpi (c : Poolev.th_cert) ->
      (match Hashtbl.find_opt esc mpi with
      | Some sites when not (SiteSet.is_empty sites) ->
          let sf, si = SiteSet.min_elt sites in
          err sf si
            "MP%d claimed type-homogeneous but the partition escapes here"
            mpi
      | _ -> ());
      (match Hashtbl.find_opt copy_blocked mpi with
      | Some why ->
          cert_err "MP%d claimed type-homogeneous but was %s" mpi why
      | None -> ());
      let ev = Option.value ~default:[] (Hashtbl.find_opt evid mpi) in
      if ev = [] then
        cert_err
          "MP%d claimed type-homogeneous at %s with no type evidence in the \
           module"
          mpi
          (Ty.to_string c.Poolev.tc_ty)
      else
        List.iter
          (fun (ty, sf, si) ->
            if not (Ty.equal ty c.Poolev.tc_ty) then
              err sf si
                "type-homogeneity certificate for MP%d claims %s but this \
                 site types it as %s"
                mpi
                (Ty.to_string c.Poolev.tc_ty)
                (Ty.to_string ty))
          ev;
      (* use coverage, both directions *)
      let found =
        List.fold_left
          (fun s site -> SiteSet.add site s)
          SiteSet.empty
          (Option.value ~default:[] (Hashtbl.find_opt uses mpi))
      in
      let listed =
        List.fold_left
          (fun s (st : Poolev.site) ->
            SiteSet.add (st.Poolev.s_func, st.Poolev.s_instr) s)
          SiteSet.empty c.Poolev.tc_members
      in
      SiteSet.iter
        (fun (sf, si) ->
          if not (SiteSet.mem (sf, si) listed) then
            err sf si "access to MP%d not covered by its membership witness"
              mpi)
        found;
      SiteSet.iter
        (fun (sf, si) ->
          if not (SiteSet.mem (sf, si) found) then
            err sf si
              "membership witness for MP%d lists a site that does not access \
               it"
              mpi)
        listed)
    th_tbl;

  (* ---- elision records ---- *)
  List.iter
    (fun (e : Poolev.elision) ->
      match e with
      | Poolev.El_th ({ Poolev.s_func = sf; s_instr = si }, mpi) -> (
          (match Hashtbl.find_opt ls_sites (sf, si) with
          | Some site_mp when site_mp = mpi -> ()
          | Some site_mp ->
              err sf si
                "load/store check elided for MP%d but the access is to MP%d"
                mpi site_mp
          | None ->
              err sf si
                "load/store check elided for MP%d at a site that is not a \
                 load, store or atomic access"
                mpi);
          if not (Hashtbl.mem th_tbl mpi) then
            err sf si
              "check elided as type-homogeneous but MP%d has no TH \
               certificate"
              mpi;
          match Hashtbl.find_opt comp_tbl mpi with
          | Some c when c.Poolev.cc_complete -> ()
          | Some _ ->
              err sf si
                "TH elision on MP%d which is certified incomplete (would be \
                 a reduced-check site)"
                mpi
          | None -> ())
      | Poolev.El_reduced ({ Poolev.s_func = sf; s_instr = si }, mpi) -> (
          (match Hashtbl.find_opt ls_sites (sf, si) with
          | Some site_mp when site_mp = mpi -> ()
          | Some site_mp ->
              err sf si
                "reduced-check elision for MP%d but the access is to MP%d"
                mpi site_mp
          | None ->
              err sf si
                "reduced-check elision for MP%d at a site that is not a \
                 load, store or atomic access"
                mpi);
          match Hashtbl.find_opt comp_tbl mpi with
          | Some c when not c.Poolev.cc_complete -> ()
          | Some _ ->
              err sf si
                "reduced-check elision on MP%d which is certified complete"
                mpi
          | None ->
              err sf si "reduced-check elision on MP%d which has no \
                         completeness certificate"
                mpi)
      | Poolev.El_func ({ Poolev.s_func = sf; s_instr = si }, mpi, just) -> (
          (match Hashtbl.find_opt indirect_sites (sf, si) with
          | Some site_mp when site_mp = mpi -> ()
          | Some site_mp ->
              err sf si
                "indirect-call check elided for MP%d but the callee is in \
                 MP%d"
                mpi site_mp
          | None ->
              err sf si
                "indirect-call check elided for MP%d at a site that is not \
                 an indirect call"
                mpi);
          match just with
          | Poolev.Fc_th ->
              if not (Hashtbl.mem th_tbl mpi) then
                err sf si
                  "funccheck elided as type-homogeneous but MP%d has no TH \
                   certificate"
                  mpi
          | Poolev.Fc_incomplete -> (
              match Hashtbl.find_opt comp_tbl mpi with
              | Some c when not c.Poolev.cc_complete -> ()
              | _ ->
                  err sf si
                    "funccheck elided as incomplete but MP%d is not \
                     certified incomplete"
                    mpi)))
    b.Poolev.pb_elisions;

  (* ---- devirtualization certificates ---- *)
  let dv_tbl : (string * int, Poolev.dv_cert) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (c : Poolev.dv_cert) ->
      let key = (c.Poolev.dc_func, c.Poolev.dc_instr) in
      if Hashtbl.mem dv_tbl key then
        err c.Poolev.dc_func c.Poolev.dc_instr
          "duplicate devirtualization certificate"
      else Hashtbl.replace dv_tbl key c)
    b.Poolev.pb_dv;
  Hashtbl.iter
    (fun (fname, instr) (c : Poolev.dv_cert) ->
      let fail fmt = err fname instr fmt in
      match Irmod.find_func m fname with
      | None -> fail "devirtualization certificate names an unknown function"
      | Some f -> (
          let prefix = Printf.sprintf "dv%d" instr in
          (match Hashtbl.find_opt comp_tbl c.Poolev.dc_mp with
          | Some cc when cc.Poolev.cc_complete -> ()
          | Some _ ->
              fail "devirtualized a call through incomplete pool MP%d"
                c.Poolev.dc_mp
          | None ->
              fail "devirtualized callee pool MP%d has no completeness \
                    certificate"
                c.Poolev.dc_mp);
          let block l =
            List.find_opt (fun (bl : Func.block) -> bl.Func.label = l)
              f.Func.f_blocks
          in
          match block (prefix ^ ".trap") with
          | None -> fail "no trap block for the devirtualized site"
          | Some trap -> (
              let callee_v =
                match (trap.Func.insns, trap.Func.term) with
                | ( [ { Instr.kind = Instr.Intrinsic ("pchk_funccheck", [ cv ]);
                        _ } ],
                    Instr.Unreachable ) ->
                    Some cv
                | _ ->
                    fail
                      "trap block is not an empty funccheck followed by \
                       unreachable";
                    None
              in
              match callee_v with
              | None -> ()
              | Some cv -> (
                  (match mp fname cv with
                  | Some cmp when cmp = c.Poolev.dc_mp -> ()
                  | Some cmp ->
                      fail "certificate names MP%d but the callee is in MP%d"
                        c.Poolev.dc_mp cmp
                  | None ->
                      fail "devirtualized callee carries no metapool \
                            qualifier");
                  match Value.ty cv with
                  | Ty.Ptr (Ty.Func (_, _, _) as fty) ->
                      if c.Poolev.dc_targets = [] then
                        fail "empty devirtualization target set";
                      List.iter
                        (fun t ->
                          (match Irmod.find_func m t with
                          | Some tf
                            when Ty.equal (Func.func_ty tf) fty -> ()
                          | Some _ ->
                              fail
                                "target '%s' is not signature-compatible \
                                 with the call"
                                t
                          | None -> fail "target '%s' is not defined" t);
                          match block (prefix ^ "." ^ t) with
                          | Some tb -> (
                              match (tb.Func.insns, tb.Func.term) with
                              | ( [ { Instr.kind =
                                        Instr.Call (Value.Fn (n, nty), _);
                                      _ } ],
                                  Instr.Jmp j )
                                when n = t
                                     && Ty.equal nty fty
                                     && j = prefix ^ ".join" ->
                                  ()
                              | _ ->
                                  fail
                                    "dispatch block for target '%s' is not \
                                     a single direct call"
                                    t)
                          | None ->
                              fail "no dispatch block for target '%s'" t)
                        c.Poolev.dc_targets;
                      (* the comparison chain must test exactly the
                         claimed targets *)
                      let tested = Hashtbl.create 8 in
                      List.iter
                        (fun (bl : Func.block) ->
                          if label_is_dv_test ~prefix bl.Func.label then
                            List.iter
                              (fun (ti : Instr.t) ->
                                match ti.Instr.kind with
                                | Instr.Icmp
                                    (Instr.Eq, _, Value.Fn (n, _))
                                | Instr.Icmp
                                    (Instr.Eq, Value.Fn (n, _), _) ->
                                    Hashtbl.replace tested n ()
                                | _ -> ())
                              bl.Func.insns)
                        f.Func.f_blocks;
                      List.iter
                        (fun t ->
                          if not (Hashtbl.mem tested t) then
                            fail
                              "claimed target '%s' is never tested by the \
                               dispatch chain"
                              t)
                        c.Poolev.dc_targets;
                      Hashtbl.iter
                        (fun n () ->
                          if not (List.mem n c.Poolev.dc_targets) then
                            fail
                              "dispatch chain tests '%s' which is not a \
                               claimed target"
                              n)
                        tested;
                      (* the claimed set must cover every address-taken
                         signature-compatible function *)
                      List.iter
                        (fun (g : Func.t) ->
                          if
                            Ty.equal (Func.func_ty g) fty
                            && Hashtbl.mem address_taken g.Func.f_name
                            && not (List.mem g.Func.f_name c.Poolev.dc_targets)
                          then
                            fail
                              "address-taken compatible function '%s' \
                               missing from the target set"
                              g.Func.f_name)
                        m.Irmod.m_funcs
                  | _ ->
                      fail "devirtualized callee is not a function pointer"))))
    dv_tbl;
  (* every generated trap block must be covered by a certificate *)
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (bl : Func.block) ->
          let l = bl.Func.label in
          if
            String.length l > 7
            && String.sub l 0 2 = "dv"
            && String.sub l (String.length l - 5) 5 = ".trap"
          then
            match
              int_of_string_opt (String.sub l 2 (String.length l - 7))
            with
            | Some n when not (Hashtbl.mem dv_tbl (f.Func.f_name, n)) ->
                err f.Func.f_name n
                  "devirtualized site has no certificate"
            | _ -> ())
        f.Func.f_blocks)
    m.Irmod.m_funcs;

  List.rev !errors

let check_ok ?config m b = check ?config m b = []
