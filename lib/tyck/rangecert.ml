(* Trusted checker for range certificates (see rangecert.mli).

   Everything here is deliberately first-order: the checker re-derives
   control flow, dominance, call sites and address escapes from the
   verified IR itself, resolves every premise index to a concrete fact
   about the expected register at a dominating block, and re-runs the
   pure interval kernel one step per fact.  No fixpoint, no widening,
   no interprocedural propagation — those stay in the untrusted
   producer. *)

open Sva_ir
module I = Sva_analysis.Interval

type error = { re_func : string; re_instr : int; re_msg : string }

let string_of_error e =
  if e.re_instr < 0 then Printf.sprintf "@%s: %s" e.re_func e.re_msg
  else Printf.sprintf "@%s: r%d: %s" e.re_func e.re_instr e.re_msg

(* Per-function context, re-derived from the IR. *)
type fctx = {
  x_f : Func.t;
  x_cfg : Cfg.t;
  x_defs : (int, string * Instr.t) Hashtbl.t;
  x_nparams : int;
  x_blocks : (string, Func.block) Hashtbl.t;
}

let analyzed (f : Func.t) =
  (not (Func.has_attr f Func.Noanalyze)) && f.Func.f_blocks <> []

(* Functions whose address escapes: [Fn] values anywhere but the callee
   slot of a direct call, or in pointer global initializers.  Their
   parameters may receive values the module never shows. *)
let escape_set (m : Irmod.t) =
  let esc = Hashtbl.create 16 in
  let note = function
    | Value.Fn (g, _) -> Hashtbl.replace esc g ()
    | _ -> ()
  in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_instrs f (fun _ i ->
          match i.Instr.kind with
          | Instr.Call (Value.Fn _, args) -> List.iter note args
          | k -> List.iter note (Instr.operands k));
      List.iter
        (fun (blk : Func.block) ->
          List.iter note (Instr.term_operands blk.Func.term))
        f.Func.f_blocks)
    m.Irmod.m_funcs;
  List.iter
    (fun (g : Irmod.global) ->
      match g.Irmod.g_init with
      | Irmod.Ptrs names -> List.iter (fun n -> Hashtbl.replace esc n ()) names
      | _ -> ())
    m.Irmod.m_globals;
  esc

let direct_callsites (m : Irmod.t) =
  let t : (string, (string * string * Instr.t) list) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_instrs f (fun blk i ->
          match i.Instr.kind with
          | Instr.Call (Value.Fn (g, _), _) ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt t g) in
              Hashtbl.replace t g ((f.Func.f_name, blk.Func.label, i) :: prev)
          | _ -> ()))
    m.Irmod.m_funcs;
  t

let width_of x reg =
  if reg < x.x_nparams then
    match List.nth_opt x.x_f.Func.f_params reg with
    | Some (_, Ty.Int w) -> Some w
    | _ -> None
  else
    match Hashtbl.find_opt x.x_defs reg with
    | Some (_, i) -> ( match i.Instr.ty with Ty.Int w -> Some w | _ -> None)
    | None -> None

let check ?(entries = fun _ -> true) (m : Irmod.t) (b : I.bundle) =
  let errs = ref [] in
  let err fn id msg = errs := { re_func = fn; re_instr = id; re_msg = msg } :: !errs in
  let esc = escape_set m in
  let eff fn =
    entries fn || Hashtbl.mem esc fn
    ||
    match Irmod.find_func m fn with
    | Some f ->
        Func.has_attr f Func.Kernel_entry || f.Func.f_varargs
        || not (analyzed f)
    | None -> true
  in
  let callsites = direct_callsites m in
  let fctxs = Hashtbl.create 16 in
  let fctx_of fn =
    match Hashtbl.find_opt fctxs fn with
    | Some c -> c
    | None ->
        let c =
          match Irmod.find_func m fn with
          | Some f when analyzed f ->
              let defs = Hashtbl.create 64 in
              Func.iter_instrs f (fun blk i ->
                  if Instr.result i <> None then
                    Hashtbl.replace defs i.Instr.id (blk.Func.label, i));
              let blocks = Hashtbl.create 16 in
              List.iter
                (fun (blk : Func.block) ->
                  Hashtbl.replace blocks blk.Func.label blk)
                f.Func.f_blocks;
              Some
                {
                  x_f = f;
                  x_cfg = Cfg.build f;
                  x_defs = defs;
                  x_nparams = List.length f.Func.f_params;
                  x_blocks = blocks;
                }
          | _ -> None
        in
        Hashtbl.replace fctxs fn c;
        c
  in
  let facts_of fn =
    Option.value ~default:[||] (Hashtbl.find_opt b.I.cb_facts fn)
  in
  (* Resolve one premise index: it must name a fact about [reg] whose
     validity block dominates [at].  A violation is an error; [top] is
     returned so the value recomputation proceeds (the bundle is already
     rejected). *)
  let premise fn x (arr : I.fact array) ~at ~reg dep =
    match dep with
    | None -> I.top
    | Some idx when idx >= 0 && idx < Array.length arr ->
        let d = arr.(idx) in
        if d.I.fa_reg <> reg then begin
          err fn reg
            (Printf.sprintf "premise %d is about r%d, not r%d" idx d.I.fa_reg
               reg);
          I.top
        end
        else if not (Cfg.dominates x.x_cfg d.I.fa_valid at) then begin
          err fn reg
            (Printf.sprintf "premise %d (valid at %s) does not dominate %s"
               idx d.I.fa_valid at);
          I.top
        end
        else d.I.fa_ival
    | Some idx ->
        err fn reg (Printf.sprintf "premise index %d out of range" idx);
        I.top
  in
  let check_fact fn x (arr : I.fact array) (fa : I.fact) =
    let reg = fa.I.fa_reg in
    (* A top claim asserts nothing; a claim at an unreachable (or
       unknown) block can never be consumed, because every consumer
       requires its validity block to dominate a reachable use. *)
    if I.is_top fa.I.fa_ival || not (Cfg.is_reachable x.x_cfg fa.I.fa_valid)
    then ()
    else
      let def_site =
        if reg >= 0 && reg < x.x_nparams then
          Some ((Func.entry x.x_f).Func.label, None)
        else
          match Hashtbl.find_opt x.x_defs reg with
          | Some (blk, i) -> Some (blk, Some i)
          | None -> None
      in
      match def_site with
      | None -> err fn reg "fact about an unknown register"
      | Some (dblk, di) ->
          if not (Cfg.dominates x.x_cfg dblk fa.I.fa_valid) then
            err fn reg
              (Printf.sprintf
                 "fact valid at %s, not dominated by the definition at %s"
                 fa.I.fa_valid dblk)
          else (
            match fa.I.fa_just with
            | I.Jwide -> (
                match width_of x reg with
                | Some w when I.subset (I.width_range w) fa.I.fa_ival -> ()
                | Some w ->
                    err fn reg
                      (Printf.sprintf
                         "width fact %s narrower than the canonical i%d range"
                         (I.ival_to_string fa.I.fa_ival) w)
                | None -> err fn reg "width fact about a non-integer register")
            | I.Jdef -> (
                match di with
                | None -> err fn reg "def fact about a parameter"
                | Some i ->
                    let ops = Instr.operands i.Instr.kind in
                    let deps =
                      if List.length fa.I.fa_deps = List.length ops then
                        fa.I.fa_deps
                      else List.map (fun _ -> None) ops
                    in
                    let ivs =
                      List.map2
                        (fun (v : Value.t) dep ->
                          match v with
                          | Value.Imm (Ty.Int _, n) -> I.const n
                          | Value.Reg (id, Ty.Int _, _) ->
                              premise fn x arr ~at:dblk ~reg:id dep
                          | _ -> I.top)
                        ops deps
                    in
                    let derived = I.eval_def i ivs in
                    if not (I.subset derived fa.I.fa_ival) then
                      err fn reg
                        (Printf.sprintf
                           "def fact %s does not contain recomputed %s"
                           (I.ival_to_string fa.I.fa_ival)
                           (I.ival_to_string derived)))
            | I.Jphi -> (
                match di with
                | Some { Instr.kind = Instr.Phi incoming; _ } ->
                    if List.length incoming <> List.length fa.I.fa_deps then
                      err fn reg "phi fact premise arity mismatch"
                    else
                      List.iter2
                        (fun (pred, (v : Value.t)) dep ->
                          (* an edge from an unreachable block never
                             executes: vacuous *)
                          if Cfg.is_reachable x.x_cfg pred then
                            match v with
                            | Value.Imm (Ty.Int _, n) ->
                                if not (I.contains fa.I.fa_ival n) then
                                  err fn reg
                                    (Printf.sprintf
                                       "phi fact %s excludes incoming %Ld"
                                       (I.ival_to_string fa.I.fa_ival) n)
                            | Value.Reg (id, Ty.Int _, _) ->
                                let iv = premise fn x arr ~at:pred ~reg:id dep in
                                if not (I.subset iv fa.I.fa_ival) then
                                  err fn reg
                                    (Printf.sprintf
                                       "phi fact %s does not contain incoming \
                                        %s from %s"
                                       (I.ival_to_string fa.I.fa_ival)
                                       (I.ival_to_string iv) pred)
                            | _ ->
                                err fn reg "phi fact over a non-integer incoming")
                        incoming fa.I.fa_deps
                | _ -> err fn reg "phi fact about a non-phi register")
            | I.Jguard { jg_src = src; jg_dst = dst } -> (
                match Hashtbl.find_opt x.x_blocks src with
                | None ->
                    err fn reg
                      (Printf.sprintf "guard fact cites unknown block %s" src)
                | Some sb ->
                    if not (Cfg.dominates x.x_cfg dst fa.I.fa_valid) then
                      err fn reg
                        (Printf.sprintf
                           "guard fact valid at %s, outside the region %s \
                            dominates"
                           fa.I.fa_valid dst)
                    else if Cfg.predecessors x.x_cfg dst <> [ src ] then
                      err fn reg
                        (Printf.sprintf
                           "edge %s->%s is not the unique way into %s" src dst
                           dst)
                    else (
                      match sb.Func.term with
                      | Instr.Br (cond, tl, el) when tl <> el && (dst = tl || dst = el)
                        -> (
                          let lookup id =
                            Option.map snd (Hashtbl.find_opt x.x_defs id)
                          in
                          match I.branch_cond ~lookup cond ~pos:(dst = tl) with
                          | None ->
                              err fn reg
                                "guard condition does not resolve to a \
                                 comparison"
                          | Some (op, a, bb) -> (
                              let base_dep, other_dep =
                                match fa.I.fa_deps with
                                | [ d0; d1 ] -> (d0, d1)
                                | _ -> (None, None)
                              in
                              let base = premise fn x arr ~at:dst ~reg base_dep in
                              let constrain subj side =
                                match subj with
                                | Value.Reg (id, Ty.Int _, _) when id = reg ->
                                    let other = if side = `Left then bb else a in
                                    let oiv =
                                      match other with
                                      | Value.Imm (Ty.Int _, n) -> I.const n
                                      | Value.Reg (oid, Ty.Int _, _) ->
                                          premise fn x arr ~at:src ~reg:oid
                                            other_dep
                                      | _ -> I.top
                                    in
                                    Some (I.refine op side oiv)
                                | _ -> None
                              in
                              match (constrain a `Left, constrain bb `Right) with
                              | Some c, _ | None, Some c ->
                                  let got = I.meet_ival base c in
                                  if not (I.subset got fa.I.fa_ival) then
                                    err fn reg
                                      (Printf.sprintf
                                         "guard fact %s does not contain \
                                          recomputed %s"
                                         (I.ival_to_string fa.I.fa_ival)
                                         (I.ival_to_string got))
                              | None, None ->
                                  err fn reg
                                    (Printf.sprintf
                                       "guarded comparison does not test r%d"
                                       reg)))
                      | _ ->
                          err fn reg
                            (Printf.sprintf
                               "%s does not end in a two-way branch to %s" src
                               dst)))
            | I.Jparam k ->
                if reg <> k || k >= x.x_nparams then
                  err fn reg "parameter fact register mismatch"
                else (
                  match Hashtbl.find_opt b.I.cb_params (fn, k) with
                  | Some claim when I.subset claim fa.I.fa_ival -> ()
                  | Some _ ->
                      err fn reg
                        "parameter fact narrower than the registered claim"
                  | None -> err fn reg "parameter fact without a registered claim")
            | I.Jret g -> (
                match di with
                | Some { Instr.kind = Instr.Call (Value.Fn (g', _), _); _ }
                  when g' = g -> (
                    match Hashtbl.find_opt b.I.cb_rets g with
                    | Some claim when I.subset claim fa.I.fa_ival -> ()
                    | Some _ ->
                        err fn reg
                          "return fact narrower than the registered claim"
                    | None -> err fn reg "return fact without a registered claim")
                | _ ->
                    err fn reg
                      (Printf.sprintf "return fact not on a direct call to @%s" g)))
  in
  (* -- every fact -- *)
  Hashtbl.iter
    (fun fn (arr : I.fact array) ->
      match fctx_of fn with
      | None -> err fn (-1) "facts about an unanalyzed function"
      | Some x -> Array.iter (check_fact fn x arr) arr)
    b.I.cb_facts;
  (* -- module-level parameter claims -- *)
  Hashtbl.iter
    (fun (fn, k) claim ->
      if I.is_top claim then ()
      else if eff fn then
        err fn (-1)
          (Printf.sprintf "parameter %d claim on an externally callable \
                           function" k)
      else
        match fctx_of fn with
        | None -> err fn (-1) "parameter claim on an unanalyzed function"
        | Some _ -> (
            match Option.value ~default:[] (Hashtbl.find_opt callsites fn) with
            | [] -> err fn (-1) "parameter claim without any call site"
            | sites ->
                List.iter
                  (fun (caller, cblock, (ci : Instr.t)) ->
                    let justified =
                      match (fctx_of caller, ci.Instr.kind) with
                      | Some cx, Instr.Call (_, args) -> (
                          match List.nth_opt args k with
                          | Some (Value.Imm (Ty.Int _, n)) -> I.contains claim n
                          | Some (Value.Reg (id, Ty.Int _, _)) ->
                              Array.exists
                                (fun (d : I.fact) ->
                                  d.I.fa_reg = id
                                  && (not (I.is_top d.I.fa_ival))
                                  && I.subset d.I.fa_ival claim
                                  && Cfg.dominates cx.x_cfg d.I.fa_valid cblock)
                                (facts_of caller)
                          | _ -> false)
                      | _ -> false
                    in
                    if not justified then
                      err fn (-1)
                        (Printf.sprintf
                           "parameter %d claim %s unjustified at the call \
                            from @%s/%s"
                           k (I.ival_to_string claim) caller cblock))
                  sites))
    b.I.cb_params;
  (* -- module-level return claims -- *)
  Hashtbl.iter
    (fun g claim ->
      if I.is_top claim then ()
      else
        match fctx_of g with
        | None -> err g (-1) "return claim on an unanalyzed function"
        | Some x ->
            List.iter
              (fun (blk : Func.block) ->
                if Cfg.is_reachable x.x_cfg blk.Func.label then
                  match blk.Func.term with
                  | Instr.Ret (Some (Value.Imm (Ty.Int _, n))) ->
                      if not (I.contains claim n) then
                        err g (-1)
                          (Printf.sprintf "return claim %s excludes returned %Ld"
                             (I.ival_to_string claim) n)
                  | Instr.Ret (Some (Value.Reg (id, Ty.Int _, _))) ->
                      if
                        not
                          (Array.exists
                             (fun (d : I.fact) ->
                               d.I.fa_reg = id
                               && (not (I.is_top d.I.fa_ival))
                               && I.subset d.I.fa_ival claim
                               && Cfg.dominates x.x_cfg d.I.fa_valid
                                    blk.Func.label)
                             (facts_of g))
                      then
                        err g (-1)
                          (Printf.sprintf "return claim %s unjustified at %s"
                             (I.ival_to_string claim) blk.Func.label)
                  | Instr.Ret (Some _) ->
                      err g (-1) "return claim over a non-integer return"
                  | _ -> ())
              x.x_f.Func.f_blocks)
    b.I.cb_rets;
  (* -- certificates -- *)
  List.iter
    (fun (c : I.cert) ->
      let fn = c.I.ce_func in
      match fctx_of fn with
      | None -> err fn c.I.ce_gep "certificate for an unanalyzed function"
      | Some x -> (
          let arr = facts_of fn in
          match Hashtbl.find_opt x.x_defs c.I.ce_gep with
          | Some (blk, gi) when blk = c.I.ce_block -> (
              match I.gep_extents m.Irmod.m_ctx gi with
              | None -> err fn c.I.ce_gep "certified gep is not of a provable shape"
              | Some vars ->
                  if List.length vars <> List.length c.I.ce_idx then
                    err fn c.I.ce_gep
                      (Printf.sprintf "certificate covers %d of %d variable \
                                       indexes"
                         (List.length c.I.ce_idx) (List.length vars))
                  else
                    List.iter2
                      (fun (pos, id, n) (pos', fidx) ->
                        if pos <> pos' then
                          err fn c.I.ce_gep "certificate index position mismatch"
                        else if fidx < 0 || fidx >= Array.length arr then
                          err fn c.I.ce_gep
                            (Printf.sprintf "index fact %d out of range" fidx)
                        else
                          let d = arr.(fidx) in
                          let want = I.range 0L (Int64.of_int (n - 1)) in
                          if d.I.fa_reg <> id then
                            err fn c.I.ce_gep
                              (Printf.sprintf
                                 "index fact is about r%d, not index r%d"
                                 d.I.fa_reg id)
                          else if not (I.subset d.I.fa_ival want) then
                            err fn c.I.ce_gep
                              (Printf.sprintf
                                 "index fact %s not within the extent %s"
                                 (I.ival_to_string d.I.fa_ival)
                                 (I.ival_to_string want))
                          else if
                            not (Cfg.dominates x.x_cfg d.I.fa_valid c.I.ce_block)
                          then
                            err fn c.I.ce_gep
                              (Printf.sprintf
                                 "index fact (valid at %s) does not dominate \
                                  the access at %s"
                                 d.I.fa_valid c.I.ce_block))
                      vars c.I.ce_idx)
          | Some (blk, _) ->
              err fn c.I.ce_gep
                (Printf.sprintf
                   "certificate block %s does not match the gep's block %s"
                   c.I.ce_block blk)
          | None -> err fn c.I.ce_gep "certificate for an unknown instruction"))
    b.I.cb_certs;
  List.rev !errs

let check_ok ?entries m b = check ?entries m b = []

(* ------------------------------------------------------------------ *)
(* Certificate-bug injection (the Section 5 experiment for ranges).    *)
(* ------------------------------------------------------------------ *)

type bug =
  | Shrink_fact
  | Wrong_reg
  | Wrong_edge
  | Drop_dep
  | Tighten_param
  | Tighten_ret

let bug_name = function
  | Shrink_fact -> "fact interval shrunk below its derivation"
  | Wrong_reg -> "premise rewired to another register's fact"
  | Wrong_edge -> "guard fact rewired to a different edge"
  | Drop_dep -> "load-bearing premise dropped"
  | Tighten_param -> "parameter claim excludes a passed argument"
  | Tighten_ret -> "return claim excludes a returned value"

let all_bugs =
  [ Shrink_fact; Wrong_reg; Wrong_edge; Drop_dep; Tighten_param; Tighten_ret ]

let copy_bundle (b : I.bundle) : I.bundle =
  let facts = Hashtbl.create (max 1 (Hashtbl.length b.I.cb_facts)) in
  Hashtbl.iter
    (fun fn arr ->
      Hashtbl.replace facts fn
        (Array.map (fun (fa : I.fact) -> { fa with I.fa_reg = fa.I.fa_reg }) arr))
    b.I.cb_facts;
  {
    I.cb_facts = facts;
    cb_params = Hashtbl.copy b.I.cb_params;
    cb_rets = Hashtbl.copy b.I.cb_rets;
    cb_certs = b.I.cb_certs;
  }

(* Strictly smaller non-top claim (possibly empty): cuts off one end, so
   the exact derivation no longer fits. *)
let shrink = function
  | I.Iv (Some l, _) as iv when l < Int64.max_int ->
      Some (I.meet_ival iv (I.Iv (Some (Int64.add l 1L), None)))
  | I.Iv (_, Some h) as iv when h > Int64.min_int ->
      Some (I.meet_ival iv (I.Iv (None, Some (Int64.sub h 1L))))
  | _ -> None

(* Exclude the concrete value [n] from a claim that contains it. *)
let exclude n claim =
  if n < Int64.max_int then
    I.meet_ival claim (I.Iv (Some (Int64.add n 1L), None))
  else I.meet_ival claim (I.Iv (None, Some (Int64.sub n 1L)))

let sorted_fact_funcs (b : I.bundle) =
  List.sort compare (Hashtbl.fold (fun fn _ acc -> fn :: acc) b.I.cb_facts [])

(* Facts whose interval is exactly their (re-checkable) derivation, so
   any strict shrink is caught by the fact's own rule.  [Jphi] claims
   may be slack joins and are excluded. *)
let shrink_sites (b : I.bundle) =
  List.concat_map
    (fun fn ->
      let arr = Hashtbl.find b.I.cb_facts fn in
      let acc = ref [] in
      Array.iteri
        (fun k (fa : I.fact) ->
          if not (I.is_top fa.I.fa_ival) then
            match fa.I.fa_just with
            | I.Jphi -> ()
            | _ -> ( match shrink fa.I.fa_ival with
                     | Some sh -> acc := (fn, k, sh) :: !acc
                     | None -> ()))
        arr;
      List.rev !acc)
    (sorted_fact_funcs b)

(* Def facts with a premise on a register operand, in a function that
   also has a fact about a different register to rewire to. *)
let wrong_reg_sites (m : Irmod.t) (b : I.bundle) =
  List.concat_map
    (fun fn ->
      let arr = Hashtbl.find b.I.cb_facts fn in
      match Irmod.find_func m fn with
      | None -> []
      | Some f ->
          let defs = Hashtbl.create 64 in
          Func.iter_instrs f (fun _ i ->
              if Instr.result i <> None then Hashtbl.replace defs i.Instr.id i);
          let acc = ref [] in
          Array.iteri
            (fun k (fa : I.fact) ->
              if (not (I.is_top fa.I.fa_ival)) && fa.I.fa_just = I.Jdef then
                match Hashtbl.find_opt defs fa.I.fa_reg with
                | None -> ()
                | Some i ->
                    let ops = Instr.operands i.Instr.kind in
                    if List.length ops = List.length fa.I.fa_deps then
                      List.iteri
                        (fun p (v : Value.t) ->
                          match (v, List.nth fa.I.fa_deps p) with
                          | Value.Reg (id, Ty.Int _, _), Some _ -> (
                              (* first fact about a different register *)
                              let j = ref (-1) in
                              Array.iteri
                                (fun jj (d : I.fact) ->
                                  if !j < 0 && d.I.fa_reg <> id then j := jj)
                                arr;
                              if !j >= 0 then acc := (fn, k, p, !j) :: !acc)
                          | _ -> ())
                        ops)
            arr;
          List.rev !acc)
    (sorted_fact_funcs b)

let wrong_edge_sites (b : I.bundle) =
  List.concat_map
    (fun fn ->
      let arr = Hashtbl.find b.I.cb_facts fn in
      let acc = ref [] in
      Array.iteri
        (fun k (fa : I.fact) ->
          match fa.I.fa_just with
          | I.Jguard { jg_src; jg_dst }
            when (not (I.is_top fa.I.fa_ival)) && jg_src <> jg_dst ->
              acc := (fn, k, jg_src, jg_dst) :: !acc
          | _ -> ())
        arr;
      List.rev !acc)
    (sorted_fact_funcs b)

(* Premises whose removal provably breaks the fact's own rule: any phi
   premise (top never fits a non-top inductive claim), and def premises
   whose recomputation with [top] escapes the claimed interval. *)
let drop_dep_sites (m : Irmod.t) (b : I.bundle) =
  List.concat_map
    (fun fn ->
      let arr = Hashtbl.find b.I.cb_facts fn in
      match Irmod.find_func m fn with
      | None -> []
      | Some f ->
          let defs = Hashtbl.create 64 in
          Func.iter_instrs f (fun _ i ->
              if Instr.result i <> None then Hashtbl.replace defs i.Instr.id i);
          let acc = ref [] in
          Array.iteri
            (fun k (fa : I.fact) ->
              if not (I.is_top fa.I.fa_ival) then
                match fa.I.fa_just with
                | I.Jphi ->
                    List.iteri
                      (fun p dep ->
                        if dep <> None then acc := (fn, k, p) :: !acc)
                      fa.I.fa_deps
                | I.Jdef -> (
                    match Hashtbl.find_opt defs fa.I.fa_reg with
                    | None -> ()
                    | Some i ->
                        let ops = Instr.operands i.Instr.kind in
                        if List.length ops = List.length fa.I.fa_deps then
                          List.iteri
                            (fun p dep ->
                              if dep <> None then begin
                                let ivs =
                                  List.mapi
                                    (fun q (v : Value.t) ->
                                      if q = p then I.top
                                      else
                                        match (v, List.nth fa.I.fa_deps q) with
                                        | Value.Imm (Ty.Int _, n), _ ->
                                            I.const n
                                        | _, Some d
                                          when d >= 0 && d < Array.length arr
                                          ->
                                            arr.(d).I.fa_ival
                                        | _ -> I.top)
                                    ops
                                in
                                if
                                  not
                                    (I.subset (I.eval_def i ivs) fa.I.fa_ival)
                                then acc := (fn, k, p) :: !acc
                              end)
                            fa.I.fa_deps)
                | _ -> ())
            arr;
          List.rev !acc)
    (sorted_fact_funcs b)

let tighten_param_sites (m : Irmod.t) (b : I.bundle) =
  let callsites = direct_callsites m in
  let keys =
    List.sort compare (Hashtbl.fold (fun kc _ acc -> kc :: acc) b.I.cb_params [])
  in
  List.concat_map
    (fun (fn, k) ->
      let claim = Hashtbl.find b.I.cb_params (fn, k) in
      if I.is_top claim then []
      else
        List.filter_map
          (fun (_, _, (ci : Instr.t)) ->
            match ci.Instr.kind with
            | Instr.Call (_, args) -> (
                match List.nth_opt args k with
                | Some (Value.Imm (Ty.Int _, n)) when I.contains claim n ->
                    Some (fn, k, n)
                | _ -> None)
            | _ -> None)
          (Option.value ~default:[] (Hashtbl.find_opt callsites fn)))
    keys

let tighten_ret_sites (m : Irmod.t) (b : I.bundle) =
  let keys =
    List.sort compare (Hashtbl.fold (fun g _ acc -> g :: acc) b.I.cb_rets [])
  in
  List.concat_map
    (fun g ->
      let claim = Hashtbl.find b.I.cb_rets g in
      if I.is_top claim then []
      else
        match Irmod.find_func m g with
        | Some f when analyzed f ->
            let cfg = Cfg.build f in
            List.filter_map
              (fun (blk : Func.block) ->
                if Cfg.is_reachable cfg blk.Func.label then
                  match blk.Func.term with
                  | Instr.Ret (Some (Value.Imm (Ty.Int _, n)))
                    when I.contains claim n ->
                      Some (g, n)
                  | _ -> None
                else None)
              f.Func.f_blocks
        | _ -> [])
    keys

let inject (m : Irmod.t) (b : I.bundle) bug ~seed =
  let nth = List.nth_opt in
  match bug with
  | Shrink_fact -> (
      match nth (shrink_sites b) seed with
      | Some (fn, k, sh) ->
          let b' = copy_bundle b in
          let fa = (Hashtbl.find b'.I.cb_facts fn).(k) in
          let old = fa.I.fa_ival in
          fa.I.fa_ival <- sh;
          Some
            ( b',
              Printf.sprintf "@%s: fact %d on r%d shrunk from %s to %s" fn k
                fa.I.fa_reg (I.ival_to_string old) (I.ival_to_string sh) )
      | None -> None)
  | Wrong_reg -> (
      match nth (wrong_reg_sites m b) seed with
      | Some (fn, k, p, j) ->
          let b' = copy_bundle b in
          let fa = (Hashtbl.find b'.I.cb_facts fn).(k) in
          fa.I.fa_deps <-
            List.mapi (fun q d -> if q = p then Some j else d) fa.I.fa_deps;
          Some
            ( b',
              Printf.sprintf
                "@%s: fact %d premise %d rewired to fact %d (about r%d)" fn k p
                j (Hashtbl.find b'.I.cb_facts fn).(j).I.fa_reg )
      | None -> None)
  | Wrong_edge -> (
      match nth (wrong_edge_sites b) seed with
      | Some (fn, k, src, dst) ->
          let b' = copy_bundle b in
          let arr = Hashtbl.find b'.I.cb_facts fn in
          (* swapping the edge cannot stay consistent: the rewired guard
             would need the old source's unique predecessor to be the old
             destination, i.e. mutual domination of distinct blocks *)
          arr.(k) <-
            { (arr.(k)) with
              I.fa_just = I.Jguard { jg_src = dst; jg_dst = src } };
          Some
            ( b',
              Printf.sprintf "@%s: fact %d guard edge %s->%s reversed" fn k src
                dst )
      | None -> None)
  | Drop_dep -> (
      match nth (drop_dep_sites m b) seed with
      | Some (fn, k, p) ->
          let b' = copy_bundle b in
          let fa = (Hashtbl.find b'.I.cb_facts fn).(k) in
          fa.I.fa_deps <-
            List.mapi (fun q d -> if q = p then None else d) fa.I.fa_deps;
          Some
            ( b',
              Printf.sprintf "@%s: fact %d on r%d lost premise %d" fn k
                fa.I.fa_reg p )
      | None -> None)
  | Tighten_param -> (
      match nth (tighten_param_sites m b) seed with
      | Some (fn, k, n) ->
          let b' = copy_bundle b in
          let old = Hashtbl.find b'.I.cb_params (fn, k) in
          Hashtbl.replace b'.I.cb_params (fn, k) (exclude n old);
          Some
            ( b',
              Printf.sprintf
                "@%s: parameter %d claim tightened from %s to exclude passed %Ld"
                fn k (I.ival_to_string old) n )
      | None -> None)
  | Tighten_ret -> (
      match nth (tighten_ret_sites m b) seed with
      | Some (g, n) ->
          let b' = copy_bundle b in
          let old = Hashtbl.find b'.I.cb_rets g in
          Hashtbl.replace b'.I.cb_rets g (exclude n old);
          Some
            ( b',
              Printf.sprintf
                "@%s: return claim tightened from %s to exclude returned %Ld" g
                (I.ival_to_string old) n )
      | None -> None)

let experiment ?entries m b ~instances =
  List.concat_map
    (fun bug ->
      let rec collect seed found acc =
        if found >= instances || seed > 200 then List.rev acc
        else
          match inject m b bug ~seed with
          | Some (buggy, desc) ->
              let caught = not (check_ok ?entries m buggy) in
              collect (seed + 1) (found + 1) ((bug, desc, caught) :: acc)
          | None -> collect (seed + 1) found acc
      in
      collect 0 0 [])
    all_bugs
