(** Analysis-bug injection — the Section 5 experiment.

    "We evaluated the effectiveness of the bytecode verifier in detecting
    bugs in the safety checking compiler, by injecting 20 different bugs
    (5 instances each of 4 different kinds) in the pointer analysis
    results. ... The verifier was able to detect all 20 bugs."

    Each injector perturbs a {e copy} of the annotations at a concrete
    program site (so the bug is guaranteed to be semantically meaningful),
    deterministically selected by [seed]. *)

open Sva_ir

type kind =
  | Wrong_var_mp  (** incorrect variable aliasing: a value's pool changed *)
  | Wrong_edge  (** incorrect inter-node edge: a pool's target rewired *)
  | False_th  (** incorrect claim of type homogeneity *)
  | Split_mp  (** insufficient merging: one pool split in two *)

val kind_name : kind -> string
val all_kinds : kind list

val copy_annot : Tyck.annot -> Tyck.annot
(** Deep copy (injection never mutates the original annotations). *)

val inject : Irmod.t -> Tyck.annot -> kind -> seed:int -> (Tyck.annot * string) option
(** Produce a buggy annotation copy and a description of the injected bug,
    or [None] if no suitable site exists for this seed (the experiment
    driver then tries the next seed). *)

val experiment :
  Irmod.t -> Tyck.annot -> instances:int -> (kind * string * bool) list
(** Run the paper's experiment: for each bug kind, inject [instances]
    distinct bugs and report, per injection, whether the checker caught
    it.  All entries should be [true]. *)

(** {1 Pool-safety certificate bugs}

    The same experiment transposed to the {!Poolcert} bundle: each
    injector perturbs a copy of the evidence the way a specific
    points-to/devirt bug would, and the trusted checker must reject
    every one. *)

type pool_bug =
  | Confuse_merge
      (** two differently-typed TH pools merged by a buggy unification *)
  | Drop_escape
      (** an escape edge lost: a frontier site hidden, or an exposed
          pool claimed complete *)
  | Stale_find
      (** a gep result left in a stale partition (missed find) *)
  | Wrong_tau  (** a TH certificate claims the wrong homogeneous type *)
  | Drop_member  (** a membership witness misses a real access site *)
  | Bogus_devirt
      (** an undefined function smuggled into (or a certificate forged
          for) a devirtualization target set *)

val pool_bug_name : pool_bug -> string
val all_pool_bugs : pool_bug list

val copy_pool_bundle : Sva_safety.Poolev.bundle -> Sva_safety.Poolev.bundle
(** Deep copy (injection never mutates the original bundle). *)

val pool_inject :
  Irmod.t ->
  Sva_safety.Poolev.bundle ->
  pool_bug ->
  seed:int ->
  (Sva_safety.Poolev.bundle * string) option
(** Produce a buggy bundle copy and a description, or [None] when no
    suitable site exists for this seed. *)

val pool_experiment :
  ?config:Sva_analysis.Pointsto.config ->
  Irmod.t ->
  Sva_safety.Poolev.bundle ->
  instances:int ->
  (pool_bug * string * bool) list
(** For each bug kind, inject up to [instances] distinct bugs and
    report, per injection, whether {!Poolcert.check} caught it.  All
    entries should be [true]. *)
