(** The trusted range-certificate checker (Section 5 discipline applied
    to bounds proofs).

    {!Sva_analysis.Interval} is a complex, interprocedural, untrusted
    analysis; every check it elides is backed by a certificate — a chain
    of per-register interval {e facts}, each carrying a justification
    checkable with purely local rules (the defining instruction's
    operands, a dominating branch edge, or a module-level claim).  This
    module re-verifies the whole bundle from scratch: it re-derives
    control flow, dominance, call sites and address escapes itself, and
    shares only the pure arithmetic kernel ({!Sva_analysis.Interval}'s
    transfer functions, exercised by its selftest against {!Constfold})
    with the producer.  Only this checker and that kernel are in the
    trusted computing base — exactly how {!Tyck} keeps the points-to
    analysis out of the TCB for metapool qualifiers.

    {!inject} perturbs certificate bundles with six bug kinds; {!check}
    must reject every one of them. *)

open Sva_ir
module I = Sva_analysis.Interval

type error = {
  re_func : string;
  re_instr : int;  (** register / instruction id; -1 for claim errors *)
  re_msg : string;
}

val string_of_error : error -> string

val check : ?entries:(string -> bool) -> Irmod.t -> I.bundle -> error list
(** Verify every fact, module-level claim and certificate in the
    bundle.  [entries] must be the same trusted configuration the
    analysis ran with ({!Sva_analysis.Interval.entry_config}): functions
    callable from outside the module, whose parameter claims are
    therefore unverifiable.  Facts claiming [top] are vacuous and
    accepted.  An empty result means every range-based elision is
    justified. *)

val check_ok : ?entries:(string -> bool) -> Irmod.t -> I.bundle -> bool

(** {1 Certificate-bug injection}

    The Section 5 experiment transposed to range certificates: each
    injector perturbs a {e copy} of the bundle at a concrete site
    (deterministically selected by [seed]) in a way that makes the
    bundle unsound or ill-formed, and the checker must reject it. *)

type bug =
  | Shrink_fact  (** a fact claims a strictly narrower interval *)
  | Wrong_reg  (** a premise rewired to a fact about another register *)
  | Wrong_edge  (** a guard fact cites a branch edge it doesn't hold on *)
  | Drop_dep  (** a load-bearing premise removed *)
  | Tighten_param  (** a parameter claim excludes a passed argument *)
  | Tighten_ret  (** a return claim excludes a returned value *)

val bug_name : bug -> string
val all_bugs : bug list

val copy_bundle : I.bundle -> I.bundle
(** Deep copy (injection never mutates the original bundle). *)

val inject :
  Irmod.t -> I.bundle -> bug -> seed:int -> (I.bundle * string) option
(** Produce a buggy bundle copy and a description of the injected bug,
    or [None] if no suitable site exists for this seed (the experiment
    driver then tries the next seed). *)

val experiment :
  ?entries:(string -> bool) ->
  Irmod.t ->
  I.bundle ->
  instances:int ->
  (bug * string * bool) list
(** For each bug kind, inject up to [instances] distinct bugs and
    report, per injection, whether {!check} caught it.  All entries
    should be [true]. *)
