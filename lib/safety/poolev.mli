(** Pool-safety evidence bundle — the untrusted half of the poolcert
    split (Section 5's proof-carrying discussion applied to the points-to
    layer, the same producer/checker seam as the range and atomicity
    certificates).

    {!create} distills the Pointsto/Metapool classification into
    per-value metapool membership tables plus explicit certificates:

    - a {e TH certificate} per pool the analysis claims type-homogeneous,
      carrying the claimed type τ and every recorded member access site;
    - a {e completeness certificate} per pool, carrying the claimed
      complete/incomplete verdict and the escape-frontier witness (the
      external-call / int-to-pointer sites that expose it);
    - a {e devirtualization certificate} per rewritten indirect call,
      carrying the callee pool and the claimed target set (appended by
      {!Devirt.run});

    and {!Checkinsert.run} appends one {!elision} record for every check
    it leaves out on points-to grounds.  Nothing in this module is
    trusted: [Sva_tyck.Poolcert] re-verifies the whole bundle against an
    independent IR scan, so [Pointsto] and [Devirt] stay out of the
    TCB. *)

open Sva_ir

type site = { s_func : string; s_instr : int }
(** An instruction, identified stably across instrumentation (inserted
    checks get fresh ids; existing ids are never renumbered). *)

type th_cert = {
  tc_mp : int;  (** metapool id *)
  tc_ty : Ty.t;  (** claimed homogeneous (array-reduced) type *)
  tc_members : site list;
      (** every load/store/gep/atomic access site recorded for the pool —
          the checker's independent use-scan must find exactly these *)
}

type comp_cert = {
  cc_mp : int;
  cc_complete : bool;
  cc_frontier : site list;
      (** direct escape sites (external calls, manufactured pointers)
          exposing the pool; must be exhaustive per the checker's scan *)
}

(** Why a [funccheck] was elided at an indirect call. *)
type fc_just =
  | Fc_th  (** the callee pool is type-homogeneous *)
  | Fc_incomplete  (** the callee pool is incomplete (reduced checks) *)

type elision =
  | El_th of site * int  (** [lscheck] elided: TH pool (site, mp) *)
  | El_reduced of site * int  (** [lscheck] skipped: incomplete pool *)
  | El_func of site * int * fc_just  (** [funccheck] elided *)

type dv_cert = {
  dc_func : string;
  dc_instr : int;  (** the rewritten indirect call's instruction id *)
  dc_mp : int;  (** the callee pointer's metapool *)
  dc_targets : string list;  (** claimed complete target set *)
}

type bundle = {
  pb_value_mp : (string * int, int) Hashtbl.t;  (** (func, reg) → mp *)
  pb_global_mp : (string, int) Hashtbl.t;
  pb_fn_mp : (string, int) Hashtbl.t;
  pb_ret_mp : (string, int) Hashtbl.t;
  pb_succ : (int, int) Hashtbl.t;  (** points-to edge, mp level *)
  mutable pb_th : th_cert list;
  mutable pb_comp : comp_cert list;
  mutable pb_elisions : elision list;
  mutable pb_dv : dv_cert list;
}

val create : Irmod.t -> Sva_analysis.Pointsto.result -> Metapool.t -> bundle
(** Extract membership maps and TH/completeness certificates from the
    analysis results.  Pure observation: building a bundle never changes
    classification, instrumentation or run-time behaviour. *)

val mp_of_value : bundle -> string -> Value.t -> int option
(** Metapool of a value occurring in the named function, per the
    membership tables (not per the live points-to graph). *)

val site_compare : site -> site -> int
val sort_sites : site list -> site list
(** Sort and dedupe by (function, instr). *)

val record_elision : bundle -> elision -> unit
val record_dv : bundle -> dv_cert -> unit

val cert_count : bundle -> int
(** TH + completeness + devirt certificates. *)

val elision_count : bundle -> int
