open Sva_ir

type summary = {
  co_ls_deduped : int;
  co_bounds_hoisted : int;
  co_avail_eliminated : int;
}

(* ---------- redundant load/store check elimination ---------- *)

let value_key (v : Value.t) =
  match v with
  | Value.Imm (t, n) -> Printf.sprintf "i:%s:%Ld" (Ty.to_string t) n
  | Value.Reg (id, _, _) -> "r:" ^ string_of_int id
  | Value.Global (g, _) -> "g:" ^ g
  | Value.Fn (f, _) -> "f:" ^ f
  | Value.Fimm f -> Printf.sprintf "fl:%h" f
  | Value.Null _ -> "null"
  | Value.Undef _ -> "undef"

(* A call or deallocation can invalidate liveness facts the earlier check
   established (the object could be dropped). *)
let invalidates (k : Instr.kind) =
  match k with
  | Instr.Call _ | Instr.Free _ -> true
  | Instr.Intrinsic (("pchk_drop_obj" | "pchk_drop_obj_opt"), _) -> true
  | _ -> false

let dedup_lschecks (f : Func.t) =
  let removed = ref 0 in
  List.iter
    (fun (b : Func.block) ->
      let available : (string, int64) Hashtbl.t = Hashtbl.create 8 in
      b.Func.insns <-
        List.filter
          (fun (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Intrinsic
                ("pchk_lscheck", [ Value.Imm (_, mp); ptr; Value.Imm (_, len) ])
              -> (
                let key = Printf.sprintf "%Ld|%s" mp (value_key ptr) in
                match Hashtbl.find_opt available key with
                | Some prior when Int64.compare len prior <= 0 ->
                    incr removed;
                    false
                | _ ->
                    Hashtbl.replace available key len;
                    true)
            | k ->
                if invalidates k then Hashtbl.reset available;
                true)
          b.Func.insns)
    f.Func.f_blocks;
  !removed

(* ---------- monotonic-loop bounds-check hoisting ---------- *)

(* The pattern (all inside one natural loop):

     header:  %i   = phi [ %start, preheader ], [ %inext, latch ]
              %c   = icmp slt %i, %bound          ; or sle
              br %c, body..., exit
     body:    %p   = getelementptr %base [ %i' ]  ; %i' = %i or sext(%i)
              pchk_bounds(mp, %base, %p, len)
     latch:   %inext = add %i, +step

   with %base and %bound loop-invariant and %start a non-negative
   constant.  The per-iteration check is replaced by one range check in
   the preheader: pchk_bounds(mp, %base, %base, %bound * elem_size),
   which degenerates to a no-op when the loop does not execute
   (non-positive extents always pass). *)

type loop_info = {
  li_blocks : string list;
  li_header : string;
  li_preheader : Func.block;
}

let find_loops (f : Func.t) cfg =
  List.filter_map
    (fun (src, header) ->
      let blocks = Cfg.natural_loop cfg (src, header) in
      (* unique out-of-loop predecessor of the header, ending in a jump *)
      let outside_preds =
        List.filter (fun p -> not (List.mem p blocks)) (Cfg.predecessors cfg header)
      in
      match outside_preds with
      | [ p ] -> (
          match Func.find_block f p with
          | blk when blk.Func.term = Instr.Jmp header ->
              Some { li_blocks = blocks; li_header = header; li_preheader = blk }
          | _ -> None
          | exception Not_found -> None)
      | _ -> None)
    (Cfg.back_edges cfg)

(* Definition site lookup: register id -> (block label, instr). *)
let def_map (f : Func.t) =
  let defs = Hashtbl.create 64 in
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun (i : Instr.t) ->
          match Instr.result i with
          | Some (Value.Reg (id, _, _)) -> Hashtbl.replace defs id (b.Func.label, i)
          | _ -> ())
        b.Func.insns)
    f.Func.f_blocks;
  defs

let invariant_in defs loop (v : Value.t) =
  match v with
  | Value.Imm _ | Value.Null _ | Value.Undef _ | Value.Fimm _ | Value.Global _
  | Value.Fn _ ->
      true
  | Value.Reg (id, _, _) -> (
      match Hashtbl.find_opt defs id with
      | Some (blk, _) -> not (List.mem blk loop.li_blocks)
      | None -> true (* a parameter *))

(* Is [v] the loop's induction variable (or its sign/zero extension)?
   Returns the header phi's register id on success. *)
let rec induction_of defs loop (v : Value.t) =
  match v with
  | Value.Reg (id, _, _) -> (
      match Hashtbl.find_opt defs id with
      | Some (blk, (i : Instr.t)) when blk = loop.li_header -> (
          match i.Instr.kind with
          | Instr.Phi incoming when List.length incoming = 2 -> (
              (* one incoming from the preheader (constant start >= 0),
                 one from inside (add id, +const) *)
              let from_pre =
                List.assoc_opt loop.li_preheader.Func.label incoming
              in
              let from_latch =
                List.find_opt
                  (fun (l, _) -> l <> loop.li_preheader.Func.label)
                  incoming
              in
              match (from_pre, from_latch) with
              | Some (Value.Imm (_, start)), Some (_, Value.Reg (nid, _, _))
                when Int64.compare start 0L >= 0 -> (
                  match Hashtbl.find_opt defs nid with
                  | Some (nblk, ni) when List.mem nblk loop.li_blocks -> (
                      match ni.Instr.kind with
                      | Instr.Binop (Instr.Add, Value.Reg (pid, _, _), Value.Imm (_, step))
                        when pid = id && Int64.compare step 0L > 0 ->
                          Some id
                      | Instr.Binop (Instr.Add, Value.Imm (_, step), Value.Reg (pid, _, _))
                        when pid = id && Int64.compare step 0L > 0 ->
                          Some id
                      | _ -> None)
                  | _ -> None)
              | _ -> None)
          | Instr.Cast ((Instr.Sext | Instr.Zext), inner, _) ->
              induction_of defs loop inner
          | _ -> None)
      | Some (blk, (i : Instr.t)) when List.mem blk loop.li_blocks -> (
          (* an extension computed in the body *)
          match i.Instr.kind with
          | Instr.Cast ((Instr.Sext | Instr.Zext), inner, _) ->
              induction_of defs loop inner
          | _ -> None)
      | _ -> None)
  | _ -> None

(* Resolve a branch condition to its signed comparison, peeling the
   zext / icmp-ne-0 chain the front end emits for boolean contexts. *)
let rec as_signed_cmp defs (v : Value.t) =
  match v with
  | Value.Reg (id, _, _) -> (
      match Hashtbl.find_opt defs id with
      | Some (_, (ci : Instr.t)) -> (
          match ci.Instr.kind with
          | Instr.Icmp ((Instr.Slt | Instr.Sle) as p, lhs, bound) ->
              Some (p, lhs, bound)
          | Instr.Icmp (Instr.Ne, x, Value.Imm (_, 0L)) -> as_signed_cmp defs x
          | Instr.Cast ((Instr.Zext | Instr.Sext), inner, _) ->
              as_signed_cmp defs inner
          | _ -> None)
      | None -> None)
  | _ -> None

(* The loop bound: header terminator br (icmp slt/sle phi, bound) with
   bound invariant.  Returns (bound value, inclusive?). *)
let loop_bound f defs loop phi_id =
  match Func.find_block f loop.li_header with
  | exception Not_found -> None
  | header -> (
      match header.Func.term with
      | Instr.Br (cond, _, _) -> (
          match as_signed_cmp defs cond with
          | Some (pred, lhs, bound)
            when induction_of defs loop lhs = Some phi_id
                 && invariant_in defs loop bound ->
              Some (bound, pred = Instr.Sle)
          | _ -> None)
      | _ -> None)

let hoist_bounds (m : Irmod.t) (f : Func.t) =
  if f.Func.f_blocks = [] then 0
  else begin
    let cfg = Cfg.build f in
    let loops = find_loops f cfg in
    let defs = def_map f in
    let hoisted = ref 0 in
    List.iter
      (fun loop ->
        List.iter
          (fun blabel ->
            match Func.find_block f blabel with
            | exception Not_found -> ()
            | blk ->
                blk.Func.insns <-
                  List.filter
                    (fun (i : Instr.t) ->
                      match i.Instr.kind with
                      | Instr.Intrinsic
                          ( "pchk_bounds",
                            [ (Value.Imm _ as mp); base; Value.Reg (did, _, _); _len ] )
                        when invariant_in defs loop base -> (
                          (* dst must be gep base [iv] with iv the loop's
                             induction variable *)
                          match Hashtbl.find_opt defs did with
                          | Some (dblk, (gi : Instr.t))
                            when List.mem dblk loop.li_blocks -> (
                              match gi.Instr.kind with
                              | Instr.Gep (gbase, [ idx ])
                                when Value.equal gbase base -> (
                                  match induction_of defs loop idx with
                                  | Some phi_id -> (
                                      match loop_bound f defs loop phi_id with
                                      | Some (bound, inclusive) ->
                                          (* preheader:
                                             ext  = count (+1 if sle)
                                             size = count * elem
                                             pchk_bounds(mp, base, base, size) *)
                                          let elem =
                                            match Value.ty base with
                                            | Ty.Ptr p -> (
                                                try Ty.sizeof m.Irmod.m_ctx p
                                                with Invalid_argument _ -> 1)
                                            | _ -> 1
                                          in
                                          let pre = loop.li_preheader in
                                          let mk ty kind =
                                            {
                                              Instr.id = Func.fresh_reg f;
                                              nm = "hoist";
                                              ty;
                                              kind;
                                            }
                                          in
                                          let widen v =
                                            if Ty.equal (Value.ty v) Ty.i64 then
                                              (v, [])
                                            else
                                              let c =
                                                mk Ty.i64
                                                  (Instr.Cast (Instr.Sext, v, Ty.i64))
                                              in
                                              (Option.get (Instr.result c), [ c ])
                                          in
                                          let bound64, widen_instrs = widen bound in
                                          let count, count_instrs =
                                            if inclusive then
                                              let a =
                                                mk Ty.i64
                                                  (Instr.Binop
                                                     ( Instr.Add,
                                                       bound64,
                                                       Value.imm64 1L ))
                                              in
                                              (Option.get (Instr.result a), [ a ])
                                            else (bound64, [])
                                          in
                                          let size =
                                            mk Ty.i64
                                              (Instr.Binop
                                                 ( Instr.Mul,
                                                   count,
                                                   Value.imm64 (Int64.of_int elem) ))
                                          in
                                          let chk =
                                            mk Ty.Void
                                              (Instr.Intrinsic
                                                 ( "pchk_bounds",
                                                   [
                                                     mp;
                                                     base;
                                                     base;
                                                     Option.get (Instr.result size);
                                                   ] ))
                                          in
                                          pre.Func.insns <-
                                            pre.Func.insns @ widen_instrs
                                            @ count_instrs @ [ size; chk ];
                                          incr hoisted;
                                          false
                                      | None -> true)
                                  | None -> true)
                              | _ -> true)
                          | _ -> true)
                      | _ -> true)
                    blk.Func.insns)
          loop.li_blocks)
      loops;
    !hoisted
  end

(* ---------- available-check elimination across blocks ---------- *)

(* The ABCD-style counterpart of {!dedup_lschecks}: a check is
   {e available} at a program point when an equal-or-stronger check
   against the same pool and pointer has executed on {e every} path from
   the entry with no intervening call or deallocation.  A must-dataflow
   computes block-entry availability (key -> largest length checked);
   checks that are available on arrival are deleted.  Unreached blocks
   carry [All] so joins only narrow over paths that exist. *)

module SM = Map.Make (String)

module AvailL = struct
  type t = All | Avail of int64 SM.t

  let bottom = All

  let equal a b =
    match (a, b) with
    | All, All -> true
    | Avail x, Avail y -> SM.equal Int64.equal x y
    | _ -> false

  let join a b =
    match (a, b) with
    | All, x | x, All -> x
    | Avail x, Avail y ->
        Avail
          (SM.merge
             (fun _ la lb ->
               match (la, lb) with
               | Some la, Some lb -> Some (Int64.min la lb)
               | _ -> None)
             x y)
end

module AvailSolver = Sva_analysis.Dataflow.Make (AvailL)

(* The availability key and checked length of a check intrinsic, when it
   is of a shape the analysis can reason about. *)
let check_key (i : Instr.t) =
  match i.Instr.kind with
  | Instr.Intrinsic
      ("pchk_lscheck", [ Value.Imm (_, mp); ptr; Value.Imm (_, len) ]) ->
      Some (Printf.sprintf "l|%Ld|%s" mp (value_key ptr), len)
  | Instr.Intrinsic
      ( "pchk_bounds",
        [ Value.Imm (_, mp); base; dst; Value.Imm (_, len) ] ) ->
      Some
        ( Printf.sprintf "b|%Ld|%s|%s" mp (value_key base) (value_key dst),
          len )
  | _ -> None

let avail_step avail (i : Instr.t) =
  match check_key i with
  | Some (key, len) ->
      let prior = Option.value ~default:Int64.min_int (SM.find_opt key avail) in
      SM.add key (Int64.max prior len) avail
  | None -> if invalidates i.Instr.kind then SM.empty else avail

let eliminate_available (f : Func.t) =
  if f.Func.f_blocks = [] then 0
  else begin
    let cfg = Cfg.build f in
    let transfer (b : Func.block) st =
      match st with
      | AvailL.All -> AvailL.All
      | AvailL.Avail avail ->
          AvailL.Avail (List.fold_left avail_step avail b.Func.insns)
    in
    let r =
      AvailSolver.solve ~entry:(AvailL.Avail SM.empty) ~transfer f cfg
    in
    let removed = ref 0 in
    List.iter
      (fun (b : Func.block) ->
        match r.AvailSolver.input b.Func.label with
        | AvailL.All -> () (* unreachable: leave untouched *)
        | AvailL.Avail entry ->
            let avail = ref entry in
            b.Func.insns <-
              List.filter
                (fun (i : Instr.t) ->
                  match check_key i with
                  | Some (key, len)
                    when (match SM.find_opt key !avail with
                         | Some prior -> Int64.compare len prior <= 0
                         | None -> false) ->
                      incr removed;
                      false
                  | _ ->
                      avail := avail_step !avail i;
                      true)
                b.Func.insns)
      f.Func.f_blocks;
    !removed
  end

let run_func m f =
  (* Pass order matters: local dedup first, then loop hoisting, then the
     global availability pass over whatever the cheaper passes left
     behind.  Record fields evaluate right-to-left, so sequence the
     passes explicitly. *)
  let deduped = dedup_lschecks f in
  let hoisted = hoist_bounds m f in
  let avail = eliminate_available f in
  {
    co_ls_deduped = deduped;
    co_bounds_hoisted = hoisted;
    co_avail_eliminated = avail;
  }

let run (m : Irmod.t) =
  let total =
    List.fold_left
      (fun acc f ->
        let s = run_func m f in
        {
          co_ls_deduped = acc.co_ls_deduped + s.co_ls_deduped;
          co_bounds_hoisted = acc.co_bounds_hoisted + s.co_bounds_hoisted;
          co_avail_eliminated =
            acc.co_avail_eliminated + s.co_avail_eliminated;
        })
      { co_ls_deduped = 0; co_bounds_hoisted = 0; co_avail_eliminated = 0 }
      m.Irmod.m_funcs
  in
  Verify.check m;
  total
