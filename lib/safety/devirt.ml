open Sva_ir
open Sva_analysis

(* Targets must exist, be defined, and match the call's static signature
   so the generated direct calls verify. *)
let compatible_targets (m : Irmod.t) (callee_ty : Ty.t) targets =
  match callee_ty with
  | Ty.Ptr (Ty.Func (_, _, _) as fty) ->
      let ok fn =
        match Irmod.find_func m fn with
        | Some f -> Ty.equal (Func.func_ty f) fty
        | None -> false
      in
      if List.for_all ok targets then Some fty else None
  | _ -> None

(* Rewrite one indirect call site into a compare-and-branch chain. *)
let rewrite_site (m : Irmod.t) (f : Func.t) (b : Func.block)
    (call : Instr.t) callee args targets fty =
  let before, after =
    let rec split acc = function
      | [] -> (List.rev acc, [])
      | (i : Instr.t) :: rest ->
          if i.Instr.id = call.Instr.id then (List.rev acc, rest)
          else split (i :: acc) rest
    in
    split [] b.Func.insns
  in
  let orig_term = b.Func.term in
  (* the call's register id is unique within the function: a safe label
     namespace for all blocks this rewrite creates *)
  let prefix = Printf.sprintf "dv%d" call.Instr.id in
  let join_l = prefix ^ ".join" in
  let trap_l = prefix ^ ".trap" in
  (* one block per target *)
  let target_blocks =
    List.map
      (fun fn ->
        let l = prefix ^ "." ^ fn in
        let ci =
          { Instr.id = Func.fresh_reg f; nm = "dv"; ty = call.Instr.ty;
            kind = Instr.Call (Value.Fn (fn, fty), args) }
        in
        ( { Func.label = l; insns = [ ci ]; term = Instr.Jmp join_l },
          (l, Instr.result ci) ))
      targets
  in
  (* the comparison chain: each test block compares the callee against one
     target and branches either to its direct-call block or onward *)
  let test_blocks = ref [] in
  let rec build_tests targets =
    match targets with
    | [] -> trap_l
    | fn :: rest ->
        let rest_entry = build_tests rest in
        let target_label =
          let blk, _ =
            List.find
              (fun ((blk : Func.block), _) ->
                match blk.Func.insns with
                | [ { Instr.kind = Instr.Call (Value.Fn (n, _), _); _ } ] ->
                    n = fn
                | _ -> false)
              target_blocks
          in
          blk.Func.label
        in
        let cmp =
          { Instr.id = Func.fresh_reg f; nm = "dvcmp"; ty = Ty.i1;
            kind = Instr.Icmp (Instr.Eq, callee, Value.Fn (fn, fty)) }
        in
        let l = Printf.sprintf "%s.t%d" prefix (List.length rest) in
        test_blocks :=
          { Func.label = l; insns = [ cmp ];
            term =
              Instr.Br (Option.get (Instr.result cmp), target_label, rest_entry) }
          :: !test_blocks;
        l
  in
  let chain_entry = build_tests targets in
  (* trap block: an empty funccheck always fires the CFI violation *)
  let trap_blk =
    { Func.label = trap_l;
      insns =
        [ { Instr.id = Func.fresh_reg f; nm = ""; ty = Ty.Void;
            kind = Instr.Intrinsic ("pchk_funccheck", [ callee ]) } ];
      term = Instr.Unreachable }
  in
  (* join block: the original result register becomes a phi *)
  let join_insns =
    match call.Instr.ty with
    | Ty.Void -> after
    | _ ->
        let incoming =
          List.map
            (fun ((blk : Func.block), (_, res)) ->
              (blk.Func.label, Option.get res))
            target_blocks
        in
        { call with Instr.kind = Instr.Phi incoming } :: after
  in
  let join_blk = { Func.label = join_l; insns = join_insns; term = orig_term } in
  b.Func.insns <- before;
  b.Func.term <- Instr.Jmp chain_entry;
  f.Func.f_blocks <-
    f.Func.f_blocks
    @ List.rev !test_blocks
    @ List.map fst target_blocks
    @ [ trap_blk; join_blk ];
  ignore m

let run ?(max_targets = 4) ?(require_assert = true) ?poolcert (m : Irmod.t)
    (pa : Pointsto.result) =
  let count = ref 0 in
  let note_dv fname (i : Instr.t) callee targets =
    match poolcert with
    | None -> ()
    | Some b ->
        Poolev.record_dv b
          {
            Poolev.dc_func = fname;
            dc_instr = i.Instr.id;
            dc_mp =
              Option.value ~default:(-1) (Poolev.mp_of_value b fname callee);
            dc_targets = targets;
          }
  in
  List.iter
    (fun (f : Func.t) ->
      if
        (not (Func.has_attr f Func.Noanalyze))
        && ((not require_assert) || Func.has_attr f Func.Callsig_assert)
      then begin
        let again = ref true in
        let done_ids = Hashtbl.create 4 in
        while !again do
          again := false;
          let site =
            List.find_map
              (fun (b : Func.block) ->
                List.find_map
                  (fun (i : Instr.t) ->
                    match i.Instr.kind with
                    | Instr.Call ((Value.Reg _ as callee), args)
                      when not (Hashtbl.mem done_ids i.Instr.id) -> (
                        let targets =
                          Pointsto.callsite_targets pa ~fname:f.Func.f_name
                            i.Instr.id
                        in
                        let complete =
                          match Pointsto.value_node pa ~fname:f.Func.f_name callee with
                          | Some n -> Pointsto.is_complete n
                          | None -> false
                        in
                        if
                          complete && targets <> []
                          && List.length targets <= max_targets
                        then
                          match compatible_targets m (Value.ty callee) targets with
                          | Some fty -> Some (b, i, callee, args, targets, fty)
                          | None -> None
                        else None)
                    | _ -> None)
                  b.Func.insns)
              f.Func.f_blocks
          in
          match site with
          | Some (b, i, callee, args, targets, fty) ->
              Hashtbl.replace done_ids i.Instr.id ();
              note_dv f.Func.f_name i callee targets;
              rewrite_site m f b i callee args targets fty;
              incr count;
              again := true
          | None -> ()
        done
      end)
    m.Irmod.m_funcs;
  if !count > 0 then Verify.check m;
  !count
