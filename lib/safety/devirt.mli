(** Devirtualization of indirect calls (Section 4.8).

    "With a small enough target set, it is profitable to 'devirtualize'
    the call, i.e., to replace the indirect function call with an explicit
    switch or branch, which also allows the called functions to be
    inlined."

    For an indirect call whose points-to target set is complete,
    signature-compatible and at most [max_targets] large, the call is
    rewritten into a compare-and-branch chain of direct calls with a
    trapping default (the control-flow-integrity guarantee is then
    enforced by construction, with no run-time set lookup).  Applied only
    inside functions carrying {!Sva_ir.Func.attr.Callsig_assert}, as in
    the paper. *)

open Sva_ir
open Sva_analysis

val run :
  ?max_targets:int ->
  ?require_assert:bool ->
  ?poolcert:Poolev.bundle ->
  Irmod.t ->
  Pointsto.result ->
  int
(** Rewrite eligible call sites; returns how many were devirtualized.
    [require_assert] (default true) restricts to [Callsig_assert]
    functions.  Re-verifies the module.  When [poolcert] is given, each
    rewritten site appends a {!Poolev.dv_cert} naming the callee's pool
    and claimed target set for the trusted checker to re-verify against
    the generated dispatch blocks and the module's address-taken
    functions. *)
