(** Run-time check insertion — the verifier's instrumentation step
    (Section 4.5).

    For every analyzed function the pass inserts:

    - [pchk_reg_obj] / [pchk_drop_obj] around heap allocator calls, the
      SVA-Core [malloc]/[free] instructions, and aggregate stack slots
      (registered at [alloca], dropped at returns);
    - stack-to-heap promotion for slots whose address may outlive the
      frame (escaping allocas become [malloc] + [free]-at-return);
    - [pchk_bounds] after every [getelementptr] that cannot be proven safe
      at compile time (constant in-range indexing is safe; variable
      indexing is not);
    - [pchk_lscheck] before loads/stores through pointers of
      non-type-homogeneous pools (TH pools need no load/store checks;
      incomplete pools get none — "reduced checks");
    - [pchk_funccheck] before indirect calls, against the call-graph
      target set (elided when the function pointer comes from a TH pool);
    - a [__sva_register_globals] function registering every global in its
      metapool, called from every {!Sva_ir.Func.attr.Kernel_entry}
      function;
    - rewrites of [sva_pseudo_alloc] into metapool registrations
      (manufactured addresses, Section 4.7).

    The returned summary is the static-metrics source for Table 9. *)

open Sva_ir
open Sva_analysis

type options = {
  static_bounds : bool;
      (** prove constant in-range geps safe at compile time (on in the
          baseline; turning it off is the ablation for the Section 7.1.3
          discussion) *)
  th_elides_lscheck : bool;
      (** elide load/store checks on type-homogeneous pools *)
  funccheck_on : bool;
  promote_escaping_stack : bool;
}

val default_options : options

type summary = {
  ls_inserted : int;
  ls_elided_th : int;  (** load/store checks skipped: TH pool *)
  ls_reduced_incomplete : int;  (** skipped: incomplete pool (§4.5) *)
  bounds_inserted : int;
  bounds_static : int;  (** geps proven safe statically *)
  funcchecks_inserted : int;
  funcchecks_elided : int;
  regs_inserted : int;  (** object registration points *)
  drops_inserted : int;
  stack_promoted : int;  (** allocas promoted to the heap *)
  ls_proved_static : int;
      (** load/store checks elided on a static lint proof (would have
          been inserted otherwise — TH/incomplete elisions are counted
          under their own fields first) *)
  bounds_static_range : int;
      (** variable-index geps whose bounds check was elided on a
          verified interval-analysis certificate (the [ranges] oracle);
          the constant-index cases are counted under [bounds_static] *)
}

val static_safe : Ty.ctx -> Value.t -> Value.t list -> bool
(** Is a constant-indexed gep provably in bounds of the base's static
    type?  The first index must be 0 (a pointer is treated as one
    object); array indexes must lie within the static array length.
    Shared with the lint layer's safe-access prover so both agree on
    what "statically safe indexing" means. *)

val gep_access_len : Ty.ctx -> Instr.t -> int
(** The byte size accessed through a gep's result (the scalar or
    aggregate the result points to); 1 when unsized. *)

val run :
  ?options:options ->
  ?proofs:(fname:string -> int -> bool) ->
  ?ranges:(fname:string -> Instr.t -> bool) ->
  ?poolcert:Poolev.bundle ->
  Irmod.t ->
  Pointsto.result ->
  Metapool.t ->
  Allocdecl.t list ->
  summary
(** Instrument the module in place.  The module must verify before and
    will verify after.  Functions with {!Func.attr.Noanalyze} are left
    untouched.

    [proofs] is the static lint layer's safe-access oracle: when it
    returns [true] for a load/store instruction, the [pchk_lscheck]
    that would have been inserted is elided and counted in
    [ls_proved_static].  Proofs are consulted only for checks that
    survive the TH/incompleteness elisions, so the count measures
    genuinely new elisions.

    [ranges] is the interval analysis's certificate oracle
    ({!Sva_analysis.Interval.elide} partially applied): when it returns
    [true] for a variable-index gep, the [pchk_bounds] that would have
    been inserted is elided and counted in [bounds_static_range].  The
    oracle is expected to materialize a certificate for each elision it
    grants, so the trusted checker can re-verify every one.

    [poolcert] is the pool-safety evidence bundle: when present, every
    TH/incompleteness [lscheck] elision and every [funccheck] elision
    appends an {!Poolev.elision} record naming its site and metapool, so
    the trusted checker ([Sva_tyck.Poolcert]) can tie each skipped check
    to a verified certificate.  Recording is pure observation — the
    instrumentation decisions and the summary are bit-identical with and
    without it. *)

val runtime_pools :
  ?smp:Sva_rt.Smp.t -> ?user_range:int * int -> Metapool.t ->
  (int * Sva_rt.Metapool_rt.t) list
(** Build the run-time pools for the inferred metapools, keyed by metapool
    id for the interpreter.  [smp] threads the owning SVM instance's CPU
    context into each pool so its lookup-cache shards follow the executing
    CPU (default: a private 1-CPU context per pool).  [user_range =
    (base, size)] registers all of userspace as a single object in every
    pool reachable from syscall arguments (Section 4.6). *)
