(** Run-time check optimizations — the "future performance improvements"
    of Section 7.1.3, implemented:

    - {e redundant-check elimination}: a load/store check against the same
      pool and pointer with an equal-or-smaller access repeated within a
      block (with no intervening deallocation or unknown call) is dropped;
    - {e loop hoisting for monotonic index ranges}: a bounds check on
      [base[i]] inside a loop whose induction variable walks [start .. N)
      with a positive constant step, [base] and [N] loop-invariant, is
      replaced by a single whole-range check in the loop preheader
      ("hoisting checks out of loops with monotonic index ranges (a
      common case)");
    - {e available-check elimination}: the cross-block (ABCD-style)
      generalization of redundant-check elimination — a must-dataflow
      over the CFG computes which checks have already executed on every
      path from the entry (with no intervening call or deallocation),
      and deletes checks that arrive available.  Within-block
      repetitions are credited to [co_ls_deduped] first; this pass
      counts only the cross-block eliminations.

    The third improvement the paper lists — static array bounds checking —
    is {!Checkinsert.options.static_bounds}.  These passes run {e after}
    check insertion, preserve IR well-formedness, and are measured by the
    ablation benchmarks. *)

open Sva_ir

type summary = {
  co_ls_deduped : int;  (** redundant load/store checks removed *)
  co_bounds_hoisted : int;  (** per-iteration bounds checks hoisted *)
  co_avail_eliminated : int;
      (** checks deleted because an equal-or-stronger check dominates
          every path to them *)
}

val run_func : Irmod.t -> Func.t -> summary

val run : Irmod.t -> summary
(** Optimize every function; re-verifies the module. *)
