open Sva_ir
open Sva_analysis

type options = {
  static_bounds : bool;
  th_elides_lscheck : bool;
  funccheck_on : bool;
  promote_escaping_stack : bool;
}

let default_options =
  {
    static_bounds = true;
    th_elides_lscheck = true;
    funccheck_on = true;
    promote_escaping_stack = true;
  }

type summary = {
  ls_inserted : int;
  ls_elided_th : int;
  ls_reduced_incomplete : int;
  bounds_inserted : int;
  bounds_static : int;
  funcchecks_inserted : int;
  funcchecks_elided : int;
  regs_inserted : int;
  drops_inserted : int;
  stack_promoted : int;
  ls_proved_static : int;
  bounds_static_range : int;
}

let zero_summary =
  {
    ls_inserted = 0;
    ls_elided_th = 0;
    ls_reduced_incomplete = 0;
    bounds_inserted = 0;
    bounds_static = 0;
    funcchecks_inserted = 0;
    funcchecks_elided = 0;
    regs_inserted = 0;
    drops_inserted = 0;
    stack_promoted = 0;
    ls_proved_static = 0;
    bounds_static_range = 0;
  }

(* ---------- helpers ---------- *)

let mk_instr f ty kind = { Instr.id = Func.fresh_reg f; nm = ""; ty; kind }

let mp_arg (d : Metapool.decl) = Value.imm d.Metapool.mp_id
let len_arg n = Value.imm64 (Int64.of_int n)

let cls_heap = Value.imm 0
let cls_stack = Value.imm 1
let cls_global = Value.imm 2

(* Is a constant-indexed gep provably in bounds of the base's static type?
   The first index must be 0 (a pointer is treated as one object); array
   indexes must be within the static array length. *)
let static_safe ctx (base : Value.t) idxs =
  match Value.ty base with
  | Ty.Ptr pointee ->
      let const v = match v with Value.Imm (_, n) -> Some n | _ -> None in
      let rec descend ty = function
        | [] -> true
        | idx :: rest -> (
            match (ty, const idx) with
            | Ty.Array (e, n), Some i ->
                Int64.compare i 0L >= 0
                && Int64.compare i (Int64.of_int n) < 0
                && descend e rest
            | Ty.Struct sname, Some i -> (
                match Ty.field_at ctx sname (Int64.to_int i) with
                | _, fty -> descend fty rest
                | exception Not_found -> false)
            | _ -> false)
      in
      (match idxs with
      | Value.Imm (_, 0L) :: rest -> descend pointee rest
      | _ -> false)
  | _ -> false

(* The byte size accessed through the gep result (the scalar or aggregate
   the result points to). *)
let gep_access_len ctx (i : Instr.t) =
  match i.Instr.ty with
  | Ty.Ptr p -> ( try Ty.sizeof ctx p with Invalid_argument _ -> 1)
  | _ -> 1

(* ---------- stack-to-heap promotion ---------- *)

(* An alloca whose address is stored into memory or returned may have
   reachable pointers after the frame dies (Section 4.3): promote it to an
   explicit heap object, freed on return (dangling pointers to it are then
   tolerated exactly like other heap danglers). *)
let escaping_allocas (f : Func.t) =
  let alloca_ids =
    Func.fold_instrs f
      (fun acc _ (i : Instr.t) ->
        match i.Instr.kind with Instr.Alloca _ -> i.Instr.id :: acc | _ -> acc)
      []
  in
  let escapes = Hashtbl.create 8 in
  let is_alloca v =
    match v with
    | Value.Reg (id, _, _) when List.mem id alloca_ids -> Some id
    | _ -> None
  in
  Func.iter_instrs f (fun _ (i : Instr.t) ->
      match i.Instr.kind with
      | Instr.Store (v, _) -> (
          match is_alloca v with
          | Some id -> Hashtbl.replace escapes id ()
          | None -> ())
      | _ -> ());
  List.iter
    (fun (b : Func.block) ->
      match b.Func.term with
      | Instr.Ret (Some v) -> (
          match is_alloca v with
          | Some id -> Hashtbl.replace escapes id ()
          | None -> ())
      | _ -> ())
    f.Func.f_blocks;
  escapes

let promote_stack (f : Func.t) =
  let escapes = escaping_allocas f in
  if Hashtbl.length escapes = 0 then 0
  else begin
    let promoted = ref [] in
    List.iter
      (fun (b : Func.block) ->
        b.Func.insns <-
          List.map
            (fun (i : Instr.t) ->
              match i.Instr.kind with
              | Instr.Alloca (ty, count) when Hashtbl.mem escapes i.Instr.id ->
                  promoted := Value.Reg (i.Instr.id, i.Instr.ty, i.Instr.nm) :: !promoted;
                  { i with Instr.kind = Instr.Malloc (ty, count) }
              | _ -> i)
            b.Func.insns)
      f.Func.f_blocks;
    (* Free every promoted object on each return path. *)
    List.iter
      (fun (b : Func.block) ->
        match b.Func.term with
        | Instr.Ret _ ->
            let frees =
              List.map (fun v -> mk_instr f Ty.Void (Instr.Free v)) !promoted
            in
            b.Func.insns <- b.Func.insns @ frees
        | _ -> ())
      f.Func.f_blocks;
    Hashtbl.length escapes
  end

(* ---------- instrumentation ---------- *)

type ctx = {
  m : Irmod.t;
  pa : Pointsto.result;
  mps : Metapool.t;
  adecls : Allocdecl.t list;
  opts : options;
  proofs : fname:string -> int -> bool;
  ranges : fname:string -> Instr.t -> bool;
  poolcert : Poolev.bundle option;
      (* when present, every points-to-justified elision appends its
         record here — "every elision materializes a certificate or is
         not taken" *)
  mutable s : summary;
}

let note_elision c e =
  match c.poolcert with
  | Some b -> Poolev.record_elision b e
  | None -> ()

let decl_of c ~fname v = Metapool.of_value c.mps c.pa ~fname v

let scalar_size c ty = try Ty.sizeof c.m.Irmod.m_ctx ty with Invalid_argument _ -> 1

let instrument_func c (f : Func.t) =
  let fname = f.Func.f_name in
  (* Stack registrations: collected so returns can drop them. *)
  let stack_regs = ref [] in
  let lscheck before (at : Instr.t) ptr len =
    match decl_of c ~fname ptr with
    | None -> ()
    | Some d ->
        if not d.Metapool.mp_complete then begin
          c.s <- { c.s with ls_reduced_incomplete = c.s.ls_reduced_incomplete + 1 };
          note_elision c
            (Poolev.El_reduced
               ( { Poolev.s_func = fname; s_instr = at.Instr.id },
                 d.Metapool.mp_id ))
        end
        else if c.opts.th_elides_lscheck && d.Metapool.mp_th then begin
          c.s <- { c.s with ls_elided_th = c.s.ls_elided_th + 1 };
          note_elision c
            (Poolev.El_th
               ( { Poolev.s_func = fname; s_instr = at.Instr.id },
                 d.Metapool.mp_id ))
        end
        else if c.proofs ~fname at.Instr.id then
          (* The lint layer proved this access in bounds of a live
             object: the check would otherwise have been inserted. *)
          c.s <- { c.s with ls_proved_static = c.s.ls_proved_static + 1 }
        else begin
          c.s <- { c.s with ls_inserted = c.s.ls_inserted + 1 };
          before :=
            mk_instr f Ty.Void
              (Instr.Intrinsic ("pchk_lscheck", [ mp_arg d; ptr; len_arg len ]))
            :: !before
        end
  in
  let reg_obj after ptr size_v cls =
    match decl_of c ~fname ptr with
    | None -> ()
    | Some d ->
        c.s <- { c.s with regs_inserted = c.s.regs_inserted + 1 };
        after :=
          mk_instr f Ty.Void
            (Instr.Intrinsic ("pchk_reg_obj", [ mp_arg d; ptr; size_v; cls ]))
          :: !after
  in
  let drop_obj before ptr =
    match decl_of c ~fname ptr with
    | None -> ()
    | Some d ->
        c.s <- { c.s with drops_inserted = c.s.drops_inserted + 1 };
        before :=
          mk_instr f Ty.Void (Instr.Intrinsic ("pchk_drop_obj", [ mp_arg d; ptr ]))
          :: !before
  in
  List.iter
    (fun (b : Func.block) ->
      let out = ref [] in
      let emit i = out := i :: !out in
      List.iter
        (fun (i : Instr.t) ->
          let before = ref [] and after = ref [] in
          (match i.Instr.kind with
          | Instr.Load p -> lscheck before i p (scalar_size c i.Instr.ty)
          | Instr.Store (v, p) -> lscheck before i p (scalar_size c (Value.ty v))
          | Instr.Atomic_cas (p, e, _) ->
              lscheck before i p (scalar_size c (Value.ty e))
          | Instr.Atomic_add (p, d) ->
              lscheck before i p (scalar_size c (Value.ty d))
          | Instr.Gep (base, idxs) -> (
              match decl_of c ~fname base with
              | None -> ()
              | Some d ->
                  if c.opts.static_bounds && static_safe c.m.Irmod.m_ctx base idxs
                  then c.s <- { c.s with bounds_static = c.s.bounds_static + 1 }
                  else if c.ranges ~fname i then
                    (* The interval analysis certified every variable
                       index in extent; the certificate is re-verified by
                       the trusted checker downstream. *)
                    c.s <-
                      {
                        c.s with
                        bounds_static_range = c.s.bounds_static_range + 1;
                      }
                  else (
                    match Instr.result i with
                    | Some r ->
                        c.s <- { c.s with bounds_inserted = c.s.bounds_inserted + 1 };
                        after :=
                          mk_instr f Ty.Void
                            (Instr.Intrinsic
                               ( "pchk_bounds",
                                 [
                                   mp_arg d;
                                   base;
                                   r;
                                   len_arg (gep_access_len c.m.Irmod.m_ctx i);
                                 ] ))
                          :: !after
                    | None -> ()))
          | Instr.Malloc (ty, count) -> (
              match Instr.result i with
              | Some r ->
                  let size_v =
                    match count with
                    | Value.Imm (_, n) ->
                        len_arg (Int64.to_int n * scalar_size c ty)
                    | cv ->
                        let widened =
                          if Ty.equal (Value.ty cv) Ty.i64 then cv
                          else
                            let w =
                              mk_instr f Ty.i64 (Instr.Cast (Instr.Sext, cv, Ty.i64))
                            in
                            after := w :: !after;
                            Option.get (Instr.result w)
                        in
                        let mul =
                          mk_instr f Ty.i64
                            (Instr.Binop
                               ( Instr.Mul,
                                 widened,
                                 len_arg (scalar_size c ty) ))
                        in
                        after := mul :: !after;
                        Option.get (Instr.result mul)
                  in
                  reg_obj after r size_v cls_heap
              | None -> ())
          | Instr.Free p -> drop_obj before p
          | Instr.Alloca (ty, count) -> (
              match Instr.result i with
              | Some r ->
                  let size =
                    match count with
                    | Value.Imm (_, n) -> Int64.to_int n * scalar_size c ty
                    | _ -> scalar_size c ty
                  in
                  reg_obj after r (len_arg size) cls_stack;
                  stack_regs := r :: !stack_regs
              | None -> ())
          | Instr.Call (Value.Fn (callee, _), args) -> (
              match Allocdecl.find c.adecls callee with
              | Some decl -> (
                  match Instr.result i with
                  | Some r ->
                      let size_v =
                        match decl.Allocdecl.a_size_arg with
                        | Some k when k < List.length args -> List.nth args k
                        | _ -> (
                            match decl.Allocdecl.a_size_fn with
                            | Some fn -> (
                                match Irmod.symbol_ty c.m fn with
                                | Some fty ->
                                    let callsz =
                                      mk_instr f Ty.i64
                                        (Instr.Call (Value.Fn (fn, fty), args))
                                    in
                                    after := callsz :: !after;
                                    Option.get (Instr.result callsz)
                                | None -> len_arg 0)
                            | None -> len_arg 0)
                      in
                      reg_obj after r size_v cls_heap
                  | None -> ())
              | None -> (
                  match Allocdecl.find_free c.adecls callee with
                  | Some _ -> (
                      match List.rev args with
                      | obj :: _ -> drop_obj before obj
                      | [] -> ())
                  | None -> ()))
          | Instr.Call (callee, args) ->
              ignore args;
              if c.opts.funccheck_on then (
                match Pointsto.value_node c.pa ~fname callee with
                | Some node
                  when Pointsto.is_type_homog node
                       || not (Pointsto.is_complete node) ->
                    c.s <-
                      { c.s with funcchecks_elided = c.s.funcchecks_elided + 1 };
                    let mpi =
                      match Metapool.of_node c.mps node with
                      | Some d -> d.Metapool.mp_id
                      | None -> -1
                    in
                    note_elision c
                      (Poolev.El_func
                         ( { Poolev.s_func = fname; s_instr = i.Instr.id },
                           mpi,
                           if Pointsto.is_type_homog node then Poolev.Fc_th
                           else Poolev.Fc_incomplete ))
                | Some _ | None ->
                    let targets =
                      Pointsto.callsite_targets c.pa ~fname i.Instr.id
                    in
                    let target_vals =
                      List.filter_map
                        (fun fn ->
                          match Irmod.symbol_ty c.m fn with
                          | Some fty -> Some (Value.Fn (fn, fty))
                          | None -> None)
                        targets
                    in
                    c.s <-
                      {
                        c.s with
                        funcchecks_inserted = c.s.funcchecks_inserted + 1;
                      };
                    before :=
                      mk_instr f Ty.Void
                        (Instr.Intrinsic ("pchk_funccheck", callee :: target_vals))
                      :: !before)
          | _ -> ());
          List.iter emit (List.rev !before);
          (* Rewrite manufactured-address registrations in place. *)
          let i =
            match i.Instr.kind with
            | Instr.Intrinsic ("sva_pseudo_alloc", args) -> (
                match
                  Instr.result i
                  |> Option.map (fun r -> decl_of c ~fname r)
                  |> Option.join
                with
                | Some d ->
                    c.s <- { c.s with regs_inserted = c.s.regs_inserted + 1 };
                    { i with
                      Instr.kind =
                        Instr.Intrinsic ("pchk_pseudo_alloc", mp_arg d :: args)
                    }
                | None -> i)
            | _ -> i
          in
          emit i;
          List.iter emit (List.rev !after))
        b.Func.insns;
      b.Func.insns <- List.rev !out)
    f.Func.f_blocks;
  (* Drop stack registrations on every return. *)
  if !stack_regs <> [] then
    List.iter
      (fun (b : Func.block) ->
        match b.Func.term with
        | Instr.Ret _ ->
            let drops = ref [] in
            List.iter (fun r -> drop_obj drops r) !stack_regs;
            b.Func.insns <- b.Func.insns @ List.rev !drops
        | _ -> ())
      f.Func.f_blocks

(* ---------- global registration ---------- *)

let register_globals_fn = "__sva_register_globals"

let add_global_registration c =
  if Irmod.find_func c.m register_globals_fn <> None then ()
  else begin
    let f = Func.create register_globals_fn Ty.Void [] in
    Irmod.add_func c.m f;
    let b = Builder.create c.m f in
    ignore (Builder.start_block b "entry");
    List.iter
      (fun (g : Irmod.global) ->
        match Pointsto.global_node c.pa g.Irmod.g_name with
        | None -> ()
        | Some node -> (
            match Metapool.of_node c.mps node with
            | None -> ()
            | Some d ->
                let size = scalar_size c g.Irmod.g_ty in
                c.s <- { c.s with regs_inserted = c.s.regs_inserted + 1 };
                ignore
                  (Builder.b_intrinsic b Ty.Void "pchk_reg_obj"
                     [ mp_arg d; Irmod.global_value g; len_arg size; cls_global ])))
      c.m.Irmod.m_globals;
    Builder.b_ret b None
    (* The SVM calls @__sva_register_globals once at boot, before control
       first enters the kernel (Section 4.3: global registrations happen
       at the kernel entry point). *)
  end

let run ?(options = default_options) ?(proofs = fun ~fname:_ _ -> false)
    ?(ranges = fun ~fname:_ _ -> false) ?poolcert m pa mps adecls =
  let c =
    {
      m;
      pa;
      mps;
      adecls;
      opts = options;
      proofs;
      ranges;
      poolcert;
      s = zero_summary;
    }
  in
  List.iter
    (fun (f : Func.t) ->
      if not (Func.has_attr f Func.Noanalyze) then begin
        if options.promote_escaping_stack then begin
          let n = promote_stack f in
          c.s <- { c.s with stack_promoted = c.s.stack_promoted + n }
        end;
        instrument_func c f
      end)
    m.Irmod.m_funcs;
  add_global_registration c;
  Verify.check m;
  c.s

let runtime_pools ?smp ?user_range (mps : Metapool.t) =
  List.map
    (fun (d : Metapool.decl) ->
      let mp =
        Sva_rt.Metapool_rt.create ?smp ~type_homog:d.Metapool.mp_th
          ~complete:d.Metapool.mp_complete ~elem_size:d.Metapool.mp_elem_size
          d.Metapool.mp_name
      in
      (match (d.Metapool.mp_userspace, user_range) with
      | true, Some (base, size) ->
          Sva_rt.Metapool_rt.register mp ~cls:Sva_rt.Metapool_rt.Userspace
            ~start:base ~len:size
      | _ -> ());
      (d.Metapool.mp_id, mp))
    (Metapool.decls mps)
