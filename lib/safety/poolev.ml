(* Pool-safety evidence bundle: the untrusted side of the poolcert
   split.  Pointsto/Metapool classification is distilled into per-value
   metapool membership maps plus explicit certificates — type-homogeneity
   witnesses, completeness (escape-frontier) witnesses and
   devirtualization target sets — and Checkinsert/Devirt append one
   elision record per check they leave out.  Nothing here is trusted:
   the whole bundle is re-verified by the purely local checker in
   Sva_tyck.Poolcert, which re-scans the IR independently. *)

open Sva_ir
module Pointsto = Sva_analysis.Pointsto

type site = { s_func : string; s_instr : int }

type th_cert = {
  tc_mp : int;
  tc_ty : Ty.t;  (* the claimed homogeneous (reduced) type *)
  tc_members : site list;  (* every recorded access site of the pool *)
}

type comp_cert = {
  cc_mp : int;
  cc_complete : bool;
  cc_frontier : site list;  (* direct escape sites exposing the pool *)
}

type fc_just = Fc_th | Fc_incomplete

type elision =
  | El_th of site * int  (* lscheck elided: type-homogeneous pool *)
  | El_reduced of site * int  (* lscheck skipped: incomplete pool *)
  | El_func of site * int * fc_just  (* funccheck elided at a call site *)

type dv_cert = {
  dc_func : string;
  dc_instr : int;  (* original indirect-call instruction id *)
  dc_mp : int;  (* the callee pointer's metapool *)
  dc_targets : string list;
}

type bundle = {
  pb_value_mp : (string * int, int) Hashtbl.t;
  pb_global_mp : (string, int) Hashtbl.t;
  pb_fn_mp : (string, int) Hashtbl.t;
  pb_ret_mp : (string, int) Hashtbl.t;
  pb_succ : (int, int) Hashtbl.t;
  mutable pb_th : th_cert list;
  mutable pb_comp : comp_cert list;
  mutable pb_elisions : elision list;
  mutable pb_dv : dv_cert list;
}

let mp_of_value b fname (v : Value.t) =
  match v with
  | Value.Reg (id, _, _) -> Hashtbl.find_opt b.pb_value_mp (fname, id)
  | Value.Global (g, _) -> Hashtbl.find_opt b.pb_global_mp g
  | Value.Fn (f, _) -> Hashtbl.find_opt b.pb_fn_mp f
  | Value.Imm _ | Value.Fimm _ | Value.Null _ | Value.Undef _ -> None

let site_compare a b =
  compare (a.s_func, a.s_instr) (b.s_func, b.s_instr)

let sort_sites sites = List.sort_uniq site_compare sites

let create (m : Irmod.t) (pa : Pointsto.result) (mps : Metapool.t) : bundle =
  let b =
    {
      pb_value_mp = Hashtbl.create 256;
      pb_global_mp = Hashtbl.create 64;
      pb_fn_mp = Hashtbl.create 64;
      pb_ret_mp = Hashtbl.create 64;
      pb_succ = Hashtbl.create 64;
      pb_th = [];
      pb_comp = [];
      pb_elisions = [];
      pb_dv = [];
    }
  in
  let mp_of_node node = Metapool.of_node mps node in
  let mp_id_of_node node =
    Option.map (fun (d : Metapool.decl) -> d.Metapool.mp_id) (mp_of_node node)
  in
  (* Membership maps (same shape as the Tyck annotation tables). *)
  List.iter
    (fun (g : Irmod.global) ->
      match Pointsto.global_node pa g.Irmod.g_name with
      | Some n -> (
          match mp_id_of_node n with
          | Some mpi -> Hashtbl.replace b.pb_global_mp g.Irmod.g_name mpi
          | None -> ())
      | None -> ())
    m.Irmod.m_globals;
  List.iter
    (fun (f : Func.t) ->
      if not (Func.has_attr f Func.Noanalyze) then begin
        let fname = f.Func.f_name in
        let note_reg id =
          match Pointsto.reg_node pa ~fname id with
          | Some n -> (
              match mp_id_of_node n with
              | Some mpi -> Hashtbl.replace b.pb_value_mp (fname, id) mpi
              | None -> ())
          | None -> ()
        in
        List.iteri (fun i _ -> note_reg i) f.Func.f_params;
        Func.iter_instrs f (fun _ (i : Instr.t) ->
            match Instr.result i with
            | Some (Value.Reg (id, _, _)) -> note_reg id
            | _ -> ());
        (match Pointsto.ret_node pa fname with
        | Some n -> (
            match mp_id_of_node n with
            | Some mpi -> Hashtbl.replace b.pb_ret_mp fname mpi
            | None -> ())
        | None -> ());
        match
          Pointsto.value_node pa ~fname (Value.Fn (fname, Func.func_ty f))
        with
        | Some n -> (
            match mp_id_of_node n with
            | Some mpi -> Hashtbl.replace b.pb_fn_mp fname mpi
            | None -> ())
        | None -> ()
      end)
    m.Irmod.m_funcs;
  List.iter
    (fun (d : Metapool.decl) ->
      match Pointsto.node_succ d.Metapool.mp_node with
      | Some s -> (
          match mp_id_of_node s with
          | Some smp -> Hashtbl.replace b.pb_succ d.Metapool.mp_id smp
          | None -> ())
      | None -> ())
    (Metapool.decls mps);
  (* Access sites grouped by metapool: the TH membership witnesses. *)
  let members : (int, site list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (a : Pointsto.access) ->
      match mp_id_of_node a.Pointsto.acc_node with
      | Some mpi ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt members mpi)
          in
          Hashtbl.replace members mpi
            ({ s_func = a.Pointsto.acc_func; s_instr = a.Pointsto.acc_instr }
            :: prev)
      | None -> ())
    (Pointsto.accesses pa);
  (* Escape sites grouped by metapool: the completeness frontiers. *)
  let frontier : (int, site list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Pointsto.escape_site) ->
      match mp_id_of_node e.Pointsto.es_node with
      | Some mpi ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt frontier mpi)
          in
          Hashtbl.replace frontier mpi
            ({ s_func = e.Pointsto.es_func; s_instr = e.Pointsto.es_instr }
            :: prev)
      | None -> ())
    (Pointsto.escape_sites pa);
  (* One completeness certificate per metapool; a TH certificate for each
     pool the analysis claims type-homogeneous. *)
  List.iter
    (fun (d : Metapool.decl) ->
      let mpi = d.Metapool.mp_id in
      b.pb_comp <-
        {
          cc_mp = mpi;
          cc_complete = d.Metapool.mp_complete;
          cc_frontier =
            sort_sites (Option.value ~default:[] (Hashtbl.find_opt frontier mpi));
        }
        :: b.pb_comp;
      if d.Metapool.mp_th then
        match Pointsto.node_ty d.Metapool.mp_node with
        | Some ty ->
            b.pb_th <-
              {
                tc_mp = mpi;
                tc_ty = ty;
                tc_members =
                  sort_sites
                    (Option.value ~default:[] (Hashtbl.find_opt members mpi));
              }
              :: b.pb_th
        | None -> ())
    (Metapool.decls mps);
  b.pb_comp <- List.rev b.pb_comp;
  b.pb_th <- List.rev b.pb_th;
  b

let record_elision b e = b.pb_elisions <- e :: b.pb_elisions
let record_dv b c = b.pb_dv <- c :: b.pb_dv

let cert_count b =
  List.length b.pb_th + List.length b.pb_comp + List.length b.pb_dv

let elision_count b = List.length b.pb_elisions
