exception Hw_fault of int * string

let page_size = 4096

let bios_base = 0x000E0000
let bios_size = 0x00020000 (* 128 KB *)
let svm_base = 0x00010000
let svm_size = 0x00005000 (* 20 KB, Section 3.4 *)
let globals_base = 0x00200000
let globals_size = 8 * 1024 * 1024
let heap_base = 0x01000000
let heap_size = 64 * 1024 * 1024
let stack_base = 0x08000000
let stack_size = 16 * 1024 * 1024
let user_base = 0x40000000
let user_size = 32 * 1024 * 1024

(* Simulated-SMP limits.  Each modeled CPU gets a private 8KB trap
   scratch area carved from the top of the kernel-stack region for its
   interrupt contexts; CPU 0's area starts exactly where the single-CPU
   scratch always lived, so 1-CPU layouts are unchanged. *)
let max_cpus = 8
let percpu_trap_size = 8192

let percpu_trap_base ~cpu =
  if cpu < 0 || cpu >= max_cpus then
    invalid_arg
      (Printf.sprintf "Machine.percpu_trap_base: cpu %d out of range [0,%d)"
         cpu max_cpus);
  stack_base + stack_size - 4096 - (cpu * percpu_trap_size)

type region = { r_name : string; r_base : int; r_size : int; r_bytes : Bytes.t }

type t = { regions : region list; mutable svm : bool }

let mk_region name base size =
  { r_name = name; r_base = base; r_size = size; r_bytes = Bytes.make size '\000' }

let create () =
  {
    regions =
      [
        mk_region "bios" bios_base bios_size;
        mk_region "svm" svm_base svm_size;
        mk_region "globals" globals_base globals_size;
        mk_region "heap" heap_base heap_size;
        mk_region "stack" stack_base stack_size;
        mk_region "user" user_base user_size;
      ];
    svm = false;
  }

let find_region t addr len =
  let rec go = function
    | [] ->
        raise
          (Hw_fault (addr, Printf.sprintf "access to unmapped address 0x%x" addr))
    | r :: rest ->
        if addr >= r.r_base && addr + len <= r.r_base + r.r_size then r
        else go rest
  in
  if len < 0 then raise (Hw_fault (addr, "negative access length"));
  go t.regions

let read t ~addr ~len =
  let r = find_region t addr len in
  Bytes.sub r.r_bytes (addr - r.r_base) len

let write t ~addr b =
  let len = Bytes.length b in
  let r = find_region t addr len in
  if r.r_name = "svm" && not t.svm then
    raise (Hw_fault (addr, "kernel store into SVM-reserved memory"));
  Bytes.blit b 0 r.r_bytes (addr - r.r_base) len

let read_int t ~addr ~width =
  let r = find_region t addr width in
  let off = addr - r.r_base in
  let v =
    match width with
    | 1 -> Int64.of_int (Char.code (Bytes.get r.r_bytes off))
    | 2 -> Int64.of_int (Bytes.get_uint16_le r.r_bytes off)
    | 4 -> Int64.of_int32 (Bytes.get_int32_le r.r_bytes off)
    | 8 -> Bytes.get_int64_le r.r_bytes off
    | _ -> raise (Hw_fault (addr, "bad access width"))
  in
  (* Canonical representation: sign-extended to 64 bits. *)
  match width with
  | 1 -> Int64.shift_right (Int64.shift_left v 56) 56
  | 2 -> Int64.shift_right (Int64.shift_left v 48) 48
  | 4 -> v (* of_int32 sign-extends *)
  | _ -> v

let write_int t ~addr ~width v =
  let r = find_region t addr width in
  if r.r_name = "svm" && not t.svm then
    raise (Hw_fault (addr, "kernel store into SVM-reserved memory"));
  let off = addr - r.r_base in
  match width with
  | 1 -> Bytes.set r.r_bytes off (Char.chr (Int64.to_int (Int64.logand v 0xffL)))
  | 2 -> Bytes.set_uint16_le r.r_bytes off (Int64.to_int (Int64.logand v 0xffffL))
  | 4 -> Bytes.set_int32_le r.r_bytes off (Int64.to_int32 v)
  | 8 -> Bytes.set_int64_le r.r_bytes off v
  | _ -> raise (Hw_fault (addr, "bad access width"))

let blit t ~src ~dst ~len =
  if len > 0 then begin
    let b = read t ~addr:src ~len in
    write t ~addr:dst b
  end

let fill t ~addr ~len c =
  if len > 0 then begin
    let r = find_region t addr len in
    if r.r_name = "svm" && not t.svm then
      raise (Hw_fault (addr, "kernel store into SVM-reserved memory"));
    Bytes.fill r.r_bytes (addr - r.r_base) len c
  end

let in_user_range ~addr ~len =
  addr >= user_base && addr + len <= user_base + user_size && len >= 0

let in_kernel_range ~addr = addr < user_base

let with_svm_mode t f =
  let prev = t.svm in
  t.svm <- true;
  Fun.protect ~finally:(fun () -> t.svm <- prev) f

let svm_mode t = t.svm
