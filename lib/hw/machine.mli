(** Simulated physical machine memory.

    The machine exposes a flat physical address space carved into fixed
    regions (BIOS, SVM-reserved, kernel globals, kernel heap, kernel
    stacks, userspace frames).  Each region is one contiguous byte buffer,
    so an out-of-bounds write inside a region silently corrupts whatever
    object is adjacent — exactly the behaviour memory-safety exploits rely
    on, and what the SVA run-time checks must catch {e before} the access
    happens.  Only access outside any region (or to a page the MMU says is
    unmapped) raises {!Hw_fault}, modelling a hardware fault.

    The SVM-reserved region models the ~20KB the virtual machine reserves
    for its own bootstrap (Section 3.4); stores to it from kernel code are
    refused unless performed through the SVM itself. *)

exception Hw_fault of int * string
(** Raised on access outside mapped memory: (address, reason). *)

(** Fixed region layout (addresses are plain ints; the VM is 64-bit). *)

val bios_base : int
val bios_size : int
val svm_base : int
val svm_size : int
val globals_base : int
val globals_size : int
val heap_base : int
val heap_size : int
val stack_base : int
val stack_size : int
val user_base : int
val user_size : int

val page_size : int
(** 4096 bytes. *)

val max_cpus : int
(** Most CPUs a simulated-SMP machine may model (8). *)

val percpu_trap_size : int
(** Bytes of private trap-scratch memory per modeled CPU (8 KB). *)

val percpu_trap_base : cpu:int -> int
(** Base of the given CPU's trap scratch area, carved downward from the
    top of the kernel-stack region.  CPU 0's area is exactly the old
    single-CPU interrupt-context scratch address, so 1-CPU memory layouts
    (and hence cycle counts) are unchanged.
    @raise Invalid_argument outside [0, max_cpus). *)

type t

val create : unit -> t

val read : t -> addr:int -> len:int -> Bytes.t
(** Copy [len] bytes out of memory.  @raise Hw_fault if the range is not
    fully inside one region. *)

val write : t -> addr:int -> Bytes.t -> unit
(** @raise Hw_fault on unmapped ranges or kernel stores into the
    SVM-reserved region (unless {!svm_mode} is on). *)

val read_int : t -> addr:int -> width:int -> int64
(** Little-endian load of [width] bytes (1, 2, 4 or 8), sign-extended to
    the canonical 64-bit representation. *)

val write_int : t -> addr:int -> width:int -> int64 -> unit

val blit : t -> src:int -> dst:int -> len:int -> unit
(** memmove semantics within/between regions. *)

val fill : t -> addr:int -> len:int -> char -> unit

val in_user_range : addr:int -> len:int -> bool
(** Whether a byte range lies entirely within the userspace region. *)

val in_kernel_range : addr:int -> bool

val with_svm_mode : t -> (unit -> 'a) -> 'a
(** Run [f] with SVM privileges: stores to the SVM-reserved region are
    permitted (the virtual machine updating its own state). *)

val svm_mode : t -> bool
