(** Experiment runners: one function per table/figure of the paper's
    evaluation (Section 7), each returning a formatted report that shows
    the paper's numbers next to the measured ones.

    Absolute times differ (the substrate is a simulator, not an 800MHz
    Pentium III), so every performance table reports {e relative
    overheads} — the quantity the paper itself reports — and the
    accompanying note says what shape property to look for. *)

val table4 : unit -> string
(** Lines modified porting the kernel (per section, by marker class). *)

val table5 : ?quick:bool -> unit -> string
(** Application latency overheads across the four kernels. *)

val table6 : ?quick:bool -> unit -> string
(** thttpd bandwidth reduction. *)

val table7 : ?quick:bool -> unit -> string
(** Raw kernel operation latency overheads. *)

val table8 : ?quick:bool -> unit -> string
(** File/pipe bandwidth reduction. *)

val table9 : unit -> string
(** Static metrics of the safety-checking compiler, "as tested" vs
    "entire kernel". *)

val exploits_table : unit -> string
(** The Section 7.2 exploit experiment. *)

val verifier_experiment : unit -> string
(** The Section 5 bug-injection experiment, run on the full kernel. *)

val figure2 : unit -> string
(** The Figure 2 reproduction: the instrumented [fib_create_info] with
    its points-to partitions. *)

val check_summary : unit -> string
(** Static check-insertion statistics for the kernel (supporting data for
    Table 9 and the Section 7.1.3 optimization discussion). *)

val ablation : ?quick:bool -> unit -> string
(** The optimizations the paper proposes or uses, measured as ablations on
    the checked kernel: the Section 7.1.3 check optimizations
    (static bounds proofs, redundant-check elimination, monotonic-loop
    hoisting), TH load/store elision, and the Section 4.8 cloning +
    devirtualization transforms. *)

val fastpath : ?quick:bool -> ?strict:bool -> unit -> string
(** The fast-path experiment: the Table 7 syscall mix under SVA-Safe with
    the per-metapool object-lookup cache off and on — splay comparisons
    per op, model cycles per op and cache hit rate.  Verifies the cache is
    semantically invisible (same check counts), cuts splay comparisons by
    at least 2x and never costs model cycles; with [strict] a failed
    criterion raises instead of being reported in the output (the
    [@bench-smoke] regression gate). *)

val smp : ?quick:bool -> ?strict:bool -> unit -> string
(** The simulated-SMP scaling experiment: identical parallel syscall-mix
    jobs scheduled over 1, 2 and 4 modeled CPUs by the deterministic
    work-stealing scheduler ({!Ukern.Boot.run_smp}).  Verifies that the
    1-CPU schedule is bit-identical to calling the jobs in sequence,
    that aggregate check counts are identical at every CPU count, that a
    same-seed rerun reproduces the 4-CPU schedule exactly, and that the
    modeled 4-CPU speedup clears the scaling floor (3x); with [strict] a
    failed criterion raises instead of being reported in the output (the
    [@bench-smoke] regression gate). *)

val tiered : ?quick:bool -> ?strict:bool -> unit -> string
(** The tiered-engine experiment: the Table 7 syscall mix under SVA-Safe
    on the pre-decoded interpreter and on the tiered engine
    (closure-compiled hot functions, signed translation cache,
    Section 3.4).  Verifies the second tier is semantically invisible —
    modeled cycles, steps and check counts bit-identical — that it
    actually promoted functions, and that it beats the interpreter on
    host wall-clock; with [strict] a failed criterion raises instead of
    being reported in the output (the [@bench-smoke] regression gate). *)

val trace : ?quick:bool -> ?strict:bool -> unit -> string
(** The observability experiment: the Table 7 syscall mix under SVA-Safe
    with the event trace + cycle-attribution profiler off, then on.
    Verifies the layer is semantically invisible — modeled cycles and
    check counts bit-identical — that events were actually recorded, and
    that the profiler attributes at least 95% of modeled cycles to
    syscall scopes.  Reports the event summary, top-10 hot syscalls and
    functions, and per-metapool metrics; with [strict] a failed
    criterion raises instead of being reported in the output (the
    [@bench-smoke] regression gate). *)

(** {1 Structured data + machine-readable output}

    The sections consumed by [bench --json] expose their measurements as
    data; the rendered tables and the JSON payload are two views of the
    same (memoized) numbers. *)

type t7_row = {
  t7_op : string;
  t7_native_cycles : float;
  t7_overheads : (string * float * float) list;
      (** configuration name, measured overhead %, paper overhead % *)
}

val table7_data : ?quick:bool -> unit -> t7_row list

type fastpath_data = {
  fp_cmp_off : float;
  fp_cmp_on : float;
  fp_cycles_off : float;
  fp_cycles_on : float;
  fp_checks_off : int;
  fp_checks_on : int;
  fp_hit_rate : float;
  fp_reduction : float;
}

val fastpath_data : ?quick:bool -> unit -> fastpath_data

type smp_point = {
  sp_cpus : int;
  sp_makespan : int;
  sp_total : int;
  sp_speedup : float;
  sp_steals : int;
  sp_ipis_sent : int;
  sp_ipis_delivered : int;
  sp_checks : int;
}

type smp_data = {
  sd_seed : int;
  sd_jobs : int;
  sd_points : smp_point list;
  sd_seq_cycles : int;
  sd_seq_checks : int;
  sd_seq_identical : bool;
  sd_rerun_identical : bool;
}

val smp_data : ?quick:bool -> unit -> smp_data

type tiered_data = {
  td_cycles_interp : float;
  td_cycles_tiered : float;
  td_steps_interp : float;
  td_steps_tiered : float;
  td_checks_interp : int;
  td_checks_tiered : int;
  td_ns_interp : float;
  td_ns_tiered : float;
  td_speedup : float;
  td_promotions : int;
  td_tcache_hits : int;
  td_tcache_misses : int;
  td_sig_verifications : int;
  td_disk_hits : int;
  td_disk_stale : int;
  td_disk_writes : int;
  td_superblocks : int;
}

val tiered_data : ?quick:bool -> unit -> tiered_data

type aot_data = {
  ad_cycles_aot : float;
  ad_steps_aot : float;
  ad_checks_aot : int;
  ad_ns_aot : float;
  ad_speedup : float;  (** host speedup over the interpreter *)
  ad_boot_cold_ns : float;  (** instantiate + compile_all, empty store *)
  ad_boot_warm_ns : float;  (** same, against the populated store *)
  ad_promotions : int;  (** functions AOT-compiled per boot *)
  ad_disk_writes_cold : int;
  ad_disk_hits_warm : int;
  ad_disk_stale_warm : int;
  ad_misses_warm : int;  (** re-translations in the warm boot (want 0) *)
  ad_superblocks : int;  (** trace superblocks formed per boot *)
}

val aot_data : ?quick:bool -> unit -> aot_data
(** Boot the AOT kernel twice through one persistent translation store
    (cold then warm, with the in-memory cache cleared between boots to
    simulate a second process), then measure the Table 7 mix on the warm
    VM.  Cached per [quick]. *)

val aot : ?quick:bool -> ?strict:bool -> unit -> string
(** The AOT-engine section: interpreter vs tiered vs whole-kernel AOT
    against a warm persistent cache.  Modeled cycle/step/check identity
    with the interpreter and warm-boot disk-cache behavior (>= 1 disk
    hit, zero re-translations) are hard gates; the warm-cache host
    speedup floor is enforced only under [strict]. *)

type trace_data = {
  tr_reps : int;
  tr_cycles_off : int;
  tr_cycles_on : int;
  tr_checks_off : int;
  tr_checks_on : int;
  tr_emitted : int;
  tr_retained : int;
  tr_dropped : int;
  tr_counts : (string * int) list;
  tr_attr_pct : float;
  tr_fn_rows : Sva_rt.Trace.prow list;
  tr_sys_rows : Sva_rt.Trace.prow list;
  tr_pools : Sva_rt.Metapool_rt.metrics list;
  tr_chrome : Jsonout.t;
}

val trace_data : ?quick:bool -> unit -> trace_data
(** Run the trace experiment (cached per [quick]): one observability-off
    and one observability-on pass over the same workload, plus the
    recorded trace (as a Chrome trace-event document), profiler reports
    and per-metapool metrics from the on pass. *)

type lint_data = {
  ld_counts : (string * int) list;
  ld_findings : int;
  ld_proofs : int;
  ld_funcs : int;
  ld_iterations : int;
  ld_ls_inserted_base : int;
  ld_ls_inserted_lint : int;
  ld_ls_proved_static : int;
}

val lint_data : unit -> lint_data
(** Lint the embedded kernel ([~lint:true] build, cached) and pair the
    result with the lint-off build's check counts. *)

val lint_table : unit -> string
(** The static-lint section: findings per checker (all zero on the
    shipped kernel), prover statistics, and the load/store check
    reduction the proofs buy. *)

type ranges_data = {
  rd_ls_off : int;
  rd_ls_on : int;
  rd_ls_range_geps : int;
  rd_bounds_off : int;
  rd_bounds_on : int;
  rd_bounds_cert : int;
  rd_certs_bounds : int;
  rd_certs_ls : int;
  rd_facts : int;
  rd_iterations : int;
}

val ranges_data : unit -> ranges_data
(** Build the entire kernel (lint on) with and without the value-range
    analysis and compare the static check counts.  The ranges-on build
    runs the trusted certificate checker as a gate, so a successful pair
    implies every elision certificate re-verified. *)

val ranges_table : unit -> string
(** The value-range elision section: check counts with ranges off/on,
    certificate counts, and the exported fact total. *)

type race_data = {
  rc_counts : (string * int) list;
  rc_shared : int;
  rc_accesses : int;
  rc_certs : int;
  rc_fact_claims : int;
  rc_cert_errors : int;
  rc_lock_edges : int;
  rc_funcs : int;
  rc_iterations : int;
  rc_fixture_findings : int;
  rc_fixture_match : bool;
  rc_injected : int;
  rc_caught : int;
  rc_conc : Sva_rt.Stats.conc_snapshot;
}

val race_data : unit -> race_data
(** Run the concurrency-safety experiment (cached): audit the shipped
    kernel through the [~races:true] pipeline gate, analyze the
    seeded-bug fixture standalone and compare against its ground truth,
    run the atomicity-certificate bug-injection experiment, and execute
    a lock-heavy workload slice to snapshot the runtime cli/sti and
    spinlock counters. *)

val race_table : ?strict:bool -> unit -> string
(** The concurrency section: findings per checker (all zero on the
    shipped kernel), certificate statistics, fixture exact-match,
    injection coverage and the runtime conc counters.  Ends in a
    PASS/FAIL verdict line; with [~strict:true] any failure raises. *)

type poolcert_data = {
  pc_th : int;
  pc_comp : int;
  pc_complete : int;
  pc_dv : int;
  pc_el_th : int;
  pc_el_reduced : int;
  pc_el_func : int;
  pc_cert_errors : int;
  pc_summary_match : bool;
  pc_boot_cycles_off : int;
  pc_boot_cycles_on : int;
  pc_cycles_off : int;
  pc_cycles_on : int;
  pc_checks_match : bool;
  pc_checks : int;
  pc_injected : int;
  pc_caught : int;
}

val poolcert_data : unit -> poolcert_data
(** Run the pool-safety certification experiment (cached): build the
    shipped kernel with and without [~poolcert:true] (the gated build
    fails outright on any trusted-checker rejection), compare the
    instrumentation summaries, boot both images and run an identical
    workload to confirm cycle/check bit-identity, and run the
    pool-certificate bug-injection experiment. *)

val poolcert_table : ?strict:bool -> unit -> string
(** The pool-safety certification section: certificate and elision
    counts, the clean-kernel checker verdict, the on/off bit-identity
    comparison and injection coverage.  Ends in a PASS/FAIL verdict
    line; with [~strict:true] any failure raises. *)

val fastpath_json : ?quick:bool -> unit -> Jsonout.t
val smp_json : ?quick:bool -> unit -> Jsonout.t
val tiered_json : ?quick:bool -> unit -> Jsonout.t
val aot_json : ?quick:bool -> unit -> Jsonout.t
val trace_json : ?quick:bool -> unit -> Jsonout.t
val table7_json : ?quick:bool -> unit -> Jsonout.t
val lint_json : unit -> Jsonout.t
val ranges_json : unit -> Jsonout.t
val race_json : unit -> Jsonout.t
val poolcert_json : unit -> Jsonout.t
