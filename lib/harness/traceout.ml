module Trace = Sva_rt.Trace
module Metapool_rt = Sva_rt.Metapool_rt
module J = Jsonout

(* ---------- Chrome trace-event export ----------

   One JSON object {"traceEvents": [...]} in the Trace Event Format:
   syscall enter/exit become "B"/"E" duration pairs, everything else an
   instant ("i") event.  Timestamps are modeled cycles — Chrome displays
   them as microseconds, which is fine: the scale is what matters. *)

let event_name (e : Trace.event) =
  match e.Trace.ev_kind with
  | Trace.Ev_check -> "check:" ^ e.Trace.ev_name
  | Trace.Ev_violation -> "violation:" ^ e.Trace.ev_name
  | Trace.Ev_register -> "reg.obj"
  | Trace.Ev_drop -> "drop.obj"
  | Trace.Ev_syscall_enter | Trace.Ev_syscall_exit ->
      Printf.sprintf "syscall %d" e.Trace.ev_a
  | Trace.Ev_svaos -> e.Trace.ev_name
  | Trace.Ev_tier_promote -> "promote:" ^ e.Trace.ev_name
  | Trace.Ev_tcache_hit -> "tcache-hit:" ^ e.Trace.ev_name
  | Trace.Ev_tcache_miss -> "tcache-miss:" ^ e.Trace.ev_name
  | Trace.Ev_tcache_disk_hit -> "tcache-disk-hit:" ^ e.Trace.ev_name
  | Trace.Ev_tcache_disk_stale -> "tcache-disk-stale:" ^ e.Trace.ev_name
  | Trace.Ev_tcache_disk_write -> "tcache-disk-write:" ^ e.Trace.ev_name
  | Trace.Ev_range_elide -> "range-elide:" ^ e.Trace.ev_name

let event_phase (e : Trace.event) =
  match e.Trace.ev_kind with
  | Trace.Ev_syscall_enter -> "B"
  | Trace.Ev_syscall_exit -> "E"
  | _ -> "i"

let event_json (e : Trace.event) =
  let base =
    [
      ("name", J.Str (event_name e));
      ("cat", J.Str (Trace.ekind_name e.Trace.ev_kind));
      ("ph", J.Str (event_phase e));
      ("ts", J.Int e.Trace.ev_ts);
      ("pid", J.Int 1);
      (* One Chrome "thread" lane per modeled CPU (1-based for display) *)
      ("tid", J.Int (e.Trace.ev_cpu + 1));
    ]
  in
  let scope =
    match event_phase e with "i" -> [ ("s", J.Str "t") ] | _ -> []
  in
  let args =
    [
      ("seq", J.Int e.Trace.ev_seq);
      ("pool", J.Str e.Trace.ev_pool);
      ("a", J.Int e.Trace.ev_a);
      ("b", J.Int e.Trace.ev_b);
    ]
  in
  J.Obj (base @ scope @ [ ("args", J.Obj args) ])

let chrome_json () =
  J.Obj
    [
      ("traceEvents", J.List (List.map event_json (Trace.events ())));
      ("displayTimeUnit", J.Str "ns");
      ( "otherData",
        J.Obj
          [
            ("clock", J.Str "modeled-cycles");
            ("emitted", J.Int (Trace.emitted ()));
            ("dropped", J.Int (Trace.dropped ()));
            ("capacity", J.Int (Trace.capacity ()));
          ] );
    ]

let write_chrome path =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (J.emit (chrome_json ())))

(* ---------- text reports ---------- *)

let all_kinds =
  [
    Trace.Ev_check;
    Trace.Ev_violation;
    Trace.Ev_register;
    Trace.Ev_drop;
    Trace.Ev_syscall_enter;
    Trace.Ev_syscall_exit;
    Trace.Ev_svaos;
    Trace.Ev_tier_promote;
    Trace.Ev_tcache_hit;
    Trace.Ev_tcache_miss;
    Trace.Ev_tcache_disk_hit;
    Trace.Ev_tcache_disk_stale;
    Trace.Ev_tcache_disk_write;
    Trace.Ev_range_elide;
  ]

let summary_table () =
  let kinds = all_kinds in
  let rows =
    List.filter_map
      (fun k ->
        let n = Trace.count k in
        if n = 0 then None
        else Some [ Trace.ekind_name k; string_of_int n ])
      kinds
  in
  let note =
    Printf.sprintf "%d emitted, %d retained, %d dropped (ring capacity %d)"
      (Trace.emitted ())
      (List.length (Trace.events ()))
      (Trace.dropped ()) (Trace.capacity ())
  in
  Tablefmt.render ~title:"Event trace summary" ~note [ Tablefmt.L; Tablefmt.R ]
    [ "event kind"; "retained" ] rows

let profile_rows ~top rows =
  let total =
    List.fold_left (fun acc r -> acc + r.Trace.p_self_cycles) 0 rows
  in
  let take n l =
    List.filteri (fun i _ -> i < n) l
  in
  List.map
    (fun r ->
      [
        r.Trace.p_name;
        string_of_int r.Trace.p_calls;
        string_of_int r.Trace.p_self_cycles;
        string_of_int r.Trace.p_total_cycles;
        string_of_int r.Trace.p_self_checks;
        (if total = 0 then "-"
         else
           Tablefmt.pct
             (100.0 *. float_of_int r.Trace.p_self_cycles /. float_of_int total));
      ])
    (take top rows)

let profile_table ?(top = 10) () =
  let aligns =
    Tablefmt.[ L; R; R; R; R; R ]
  in
  let header = [ "scope"; "calls"; "self cyc"; "total cyc"; "checks"; "self%" ] in
  let fn =
    Tablefmt.render ~title:(Printf.sprintf "Hot functions (top %d)" top)
      ~note:
        (Printf.sprintf "self cycles sum: %d" (Trace.fn_self_cycles ()))
      aligns header
      (profile_rows ~top (Trace.fn_report ()))
  in
  let sys =
    Tablefmt.render ~title:(Printf.sprintf "Hot syscalls (top %d)" top)
      ~note:
        (Printf.sprintf "self cycles sum: %d" (Trace.sys_self_cycles ()))
      aligns header
      (profile_rows ~top (Trace.sys_report ()))
  in
  fn ^ sys

let pool_metrics_table metrics =
  let rows =
    List.map
      (fun (m : Metapool_rt.metrics) ->
        [
          m.Metapool_rt.m_name;
          string_of_int m.Metapool_rt.m_live;
          string_of_int m.Metapool_rt.m_peak;
          string_of_int m.Metapool_rt.m_regs;
          string_of_int m.Metapool_rt.m_drops;
          string_of_int m.Metapool_rt.m_depth;
          string_of_int m.Metapool_rt.m_lookups;
          Tablefmt.pct (Metapool_rt.metrics_hit_rate m);
        ])
      metrics
  in
  Tablefmt.render ~title:"Per-metapool metrics"
    ~note:"hit% is this pool's object-lookup cache"
    Tablefmt.[ L; R; R; R; R; R; R; R ]
    [ "metapool"; "live"; "peak"; "regs"; "drops"; "depth"; "lookups"; "hit%" ]
    rows
