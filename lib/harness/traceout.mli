(** Exporters for the {!Sva_rt.Trace} observability layer: Chrome
    trace-event JSON (loadable in [chrome://tracing] / Perfetto) and
    plain-text summary, profile and per-metapool metrics tables.

    Pure readers — nothing here mutates trace, profiler or pool state. *)

val all_kinds : Sva_rt.Trace.ekind list
(** Every event kind, in declaration order. *)

val event_json : Sva_rt.Trace.event -> Jsonout.t
(** One trace event in Chrome trace-event form: syscall enter/exit as
    ["B"]/["E"] duration events, everything else an instant (["i"]).
    Timestamps are modeled cycles. *)

val chrome_json : unit -> Jsonout.t
(** The retained trace as [{"traceEvents": [...], ...}], with emission /
    drop / capacity accounting under ["otherData"]. *)

val write_chrome : string -> unit
(** Write {!chrome_json} to a file. *)

val summary_table : unit -> string
(** Retained-event counts by kind, plus ring-buffer accounting. *)

val profile_table : ?top:int -> unit -> string
(** Top-N hot functions and syscalls by self cycles (default 10), from
    the profiler accumulators. *)

val pool_metrics_table : Sva_rt.Metapool_rt.metrics list -> string
(** Live/peak object counts, registration traffic, splay depth and
    cache hit rate for each pool. *)
