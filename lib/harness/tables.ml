module Pipeline = Sva_pipeline.Pipeline
module Boot = Ukern.Boot
module Kbuild = Ukern.Kbuild
module Pointsto = Sva_analysis.Pointsto
module T = Tablefmt

(* Build each kernel configuration once and reuse it across tables. *)
let image_cache : (Pipeline.conf, Pipeline.built) Hashtbl.t = Hashtbl.create 4

let image conf =
  match Hashtbl.find_opt image_cache conf with
  | Some b -> b
  | None ->
      let b = Kbuild.build ~conf Kbuild.as_tested in
      Hashtbl.replace image_cache conf b;
      b

let fresh_kernel conf = Boot.boot_built (image conf) ~variant:Kbuild.as_tested

(* The Sva_safe kernel built with the static lint stage: same sources,
   same options, plus findings and safe-access proofs (which elide
   provably-redundant load/store checks).  Cached like [image]. *)
let lint_image_cache : Pipeline.built option ref = ref None

let lint_image () =
  match !lint_image_cache with
  | Some b -> b
  | None ->
      let b = Kbuild.build ~conf:Pipeline.Sva_safe ~lint:true Kbuild.as_tested in
      lint_image_cache := Some b;
      b

(* The check-reduction comparison runs on the entire-kernel variant: with
   every pool complete, elided checks are checks that would really have
   been executed (on the as-tested kernel the provable accesses all sit
   on incomplete or type-homogeneous pools, which are check-free
   already; the ablation table shows that interaction). *)
let entire_pair_cache : (Pipeline.built * Pipeline.built) option ref = ref None

let entire_pair () =
  match !entire_pair_cache with
  | Some p -> p
  | None ->
      let off = Kbuild.build ~conf:Pipeline.Sva_safe Kbuild.entire_kernel in
      let on =
        Kbuild.build ~conf:Pipeline.Sva_safe ~lint:true Kbuild.entire_kernel
      in
      entire_pair_cache := Some (off, on);
      (off, on)

let sva_confs = [ Pipeline.Sva_gcc; Pipeline.Sva_llvm; Pipeline.Sva_safe ]

(* ---------- Table 4 ---------- *)

let count_lines pred src =
  List.length (List.filter pred (String.split_on_char '\n' src))

let contains line needle =
  let ll = String.length line and nl = String.length needle in
  let rec go i = i + nl <= ll && (String.sub line i nl = needle || go (i + 1)) in
  nl > 0 && go 0

let table4 () =
  let sections = Kbuild.sections Kbuild.as_tested in
  let rows =
    List.map
      (fun (s : Kbuild.section) ->
        let total = count_lines (fun l -> String.trim l <> "") s.Kbuild.sec_source in
        let port = count_lines (fun l -> contains l "SVA-PORT") s.Kbuild.sec_source in
        let alloc = count_lines (fun l -> contains l "SVA-ALLOC") s.Kbuild.sec_source in
        let ana = count_lines (fun l -> contains l "SVA-ANALYSIS") s.Kbuild.sec_source in
        let pctv =
          if total = 0 then 0.0
          else float_of_int (port + alloc + ana) /. float_of_int total *. 100.0
        in
        [
          s.Kbuild.sec_name;
          string_of_int total;
          string_of_int port;
          string_of_int alloc;
          string_of_int ana;
          Printf.sprintf "%.1f%%" pctv;
        ])
      sections
  in
  T.render
    ~title:"Table 4: lines modified porting the kernel to SVA"
    ~note:
      "Paper: 154 SVA-OS + 76 allocator + 58 analysis lines over 603,232 \
       machine-independent LOC (0.03%), plus 4,777 arch-dependent lines \
       (16.3%).  Shape to check: port changes concentrate in the \
       SVA-OS/arch layer; machine-independent sections change only a few \
       percent."
    [ T.L; T.R; T.R; T.R; T.R; T.R ]
    [ "Section"; "LOC"; "SVA-OS"; "Allocators"; "Analysis"; "% changed" ]
    rows

(* ---------- Tables 7 and 8 ---------- *)

(* Deterministic cycle-model measurement: boot a fresh kernel, warm the
   operation once, then average the cycle delta over [reps] runs. *)
let measure_cell conf ~reps ~batches op_of_ctx =
  ignore batches;
  let t = fresh_kernel conf in
  let ctx = Workloads.prepare t in
  op_of_ctx ctx;
  Boot.reset_cycles t;
  for _ = 1 to reps do
    op_of_ctx ctx
  done;
  float_of_int (Boot.cycles t) /. float_of_int reps

let overhead ~baseline c = (c -. baseline) /. baseline *. 100.0

type t7_row = {
  t7_op : string;
  t7_native_cycles : float;
  t7_overheads : (string * float * float) list;
      (** configuration name, measured overhead %, paper overhead % *)
}

(* Measured table 7 data, memoized per repetition mode: the rendered
   table and the JSON payload see the same numbers even when both are
   requested in one run. *)
let t7_cache : (bool, t7_row list) Hashtbl.t = Hashtbl.create 2

let table7_data ?(quick = false) () =
  match Hashtbl.find_opt t7_cache quick with
  | Some rows -> rows
  | None ->
      let batches = if quick then 3 else 5 in
      let scale r = if quick then max 5 (r / 4) else r in
      let rows =
        List.map
          (fun (nm, (paper : float array), op, reps) ->
            let reps = scale reps in
            let native =
              measure_cell Pipeline.Native ~reps ~batches (fun c -> op c)
            in
            let overheads =
              List.mapi
                (fun i conf ->
                  let s = measure_cell conf ~reps ~batches (fun c -> op c) in
                  (Pipeline.conf_name conf, overhead ~baseline:native s,
                   paper.(i)))
                sva_confs
            in
            { t7_op = nm; t7_native_cycles = native; t7_overheads = overheads })
          Workloads.latency_ops
      in
      Hashtbl.replace t7_cache quick rows;
      rows

let table7 ?(quick = false) () =
  let rows =
    List.map
      (fun r ->
        match r.t7_overheads with
        | [ (_, g, pg); (_, l, pl); (_, s, ps) ] ->
            [
              r.t7_op;
              Printf.sprintf "%.0fcy" r.t7_native_cycles;
              T.pct g ^ " " ^ T.pct_paper pg;
              T.pct l ^ " " ^ T.pct_paper pl;
              T.pct s ^ " " ^ T.pct_paper ps;
            ]
        | _ -> assert false)
      (table7_data ~quick ())
  in
  T.render
    ~title:"Table 7: latency increase for raw kernel operations (vs native)"
    ~note:
      "Columns: measured% (paper%).  Shape to check: cheap syscalls \
       (getpid/gettimeofday) are dominated by SVA-OS cost so all three SVA \
       kernels pay similar moderate overhead; syscalls that do real work \
       (open/close, pipe, fork) blow up only under SVA-Safe where run-time \
       checks dominate (Section 7.1.2)."
    [ T.L; T.R; T.R; T.R; T.R ]
    [ "Operation"; "Native"; "SVA-GCC"; "SVA-LLVM"; "SVA-Safe" ]
    rows

let table8 ?(quick = false) () =
  let batches = if quick then 3 else 5 in
  let rows =
    List.map
      (fun (nm, paper, op, bytes, reps) ->
        let reps = if quick then max 2 (reps / 2) else reps in
        let native = measure_cell Pipeline.Native ~reps ~batches op in
        let cells =
          List.map
            (fun conf ->
              let s = measure_cell conf ~reps ~batches op in
              overhead ~baseline:native s)
            sva_confs
        in
        match cells with
        | [ g; l; s ] ->
            [
              nm;
              Printf.sprintf "%.2fcy/B" (native /. float_of_int bytes);
              T.pct g ^ " " ^ T.pct_paper paper.(0);
              T.pct l ^ " " ^ T.pct_paper paper.(1);
              T.pct s ^ " " ^ T.pct_paper paper.(2);
            ]
        | _ -> assert false)
      Workloads.bandwidth_ops
  in
  T.render
    ~title:"Table 8: bandwidth reduction for raw kernel operations (vs native)"
    ~note:
      "Columns: measured slowdown% (paper reduction%).  Shape to check: \
       file reads lose little (work is bulk copy); pipes lose much more \
       under SVA-Safe (checked ring-buffer path, Section 7.1.2)."
    [ T.L; T.R; T.R; T.R; T.R ]
    [ "Operation"; "Native"; "SVA-GCC"; "SVA-LLVM"; "SVA-Safe" ]
    rows

(* ---------- Tables 5 and 6 ---------- *)

type appmix = {
  am_name : string;
  am_pct_sys : float;  (** paper: % of time spent in the kernel *)
  am_paper : float array;  (** paper overheads: gcc/llvm/safe, % *)
  am_native_s : float;  (** paper native runtime, seconds *)
  am_op : Workloads.ctx -> unit;
  am_reps : int;
}

let local_apps =
  [
    {
      am_name = "bzip2 (8.6MB)";
      am_pct_sys = 16.4;
      am_paper = [| 0.9; 1.8; 1.8 |];
      am_native_s = 11.1;
      am_op = (fun c -> Workloads.op_file_read c 65536);
      am_reps = 4;
    };
    {
      am_name = "lame (42MB)";
      am_pct_sys = 0.91;
      am_paper = [| 0.0; 1.6; 0.8 |];
      am_native_s = 12.7;
      am_op = Workloads.op_write;
      am_reps = 100;
    };
    {
      am_name = "gcc (-O3 58k log)";
      am_pct_sys = 4.07;
      am_paper = [| 1.2; 2.1; 2.1 |];
      am_native_s = 24.3;
      am_op =
        (fun c ->
          Workloads.op_open_close c;
          Workloads.op_write c;
          Workloads.op_file_read c 8192);
      am_reps = 30;
    };
    {
      am_name = "ldd (all system libs)";
      am_pct_sys = 55.9;
      am_paper = [| 11.1; 22.2; 66.7 |];
      am_native_s = 1.8;
      am_op =
        (fun c ->
          Workloads.op_open_close c;
          Workloads.op_open_close c;
          Workloads.op_file_read c 4096);
      am_reps = 30;
    };
  ]

(* An application is fixed user time plus kernel time: with the paper's
   %system-time p, overall overhead = p/100 * kernel-mix overhead. *)
let app_overhead ~pct_sys ~mix_overhead = pct_sys /. 100.0 *. mix_overhead

let http_cell conf ~file ~cgi ~reps ~batches =
  ignore batches;
  let t = fresh_kernel conf in
  let ctx = Workloads.prepare t in
  Workloads.http_setup ctx;
  ignore (Workloads.serve_http_request ctx ~file ~cgi);
  Boot.reset_cycles t;
  for _ = 1 to reps do
    ignore (Workloads.serve_http_request ctx ~file ~cgi)
  done;
  float_of_int (Boot.cycles t) /. float_of_int reps

let scp_cell conf ~reps ~batches =
  ignore batches;
  let t = fresh_kernel conf in
  let ctx = Workloads.prepare t in
  Workloads.http_setup ctx;
  Workloads.op_scp_chunk ctx;
  Boot.reset_cycles t;
  for _ = 1 to reps do
    Workloads.op_scp_chunk ctx
  done;
  float_of_int (Boot.cycles t) /. float_of_int reps

let table5 ?(quick = false) () =
  let batches = if quick then 3 else 5 in
  let rows_local =
    List.map
      (fun am ->
        let reps = if quick then max 2 (am.am_reps / 3) else am.am_reps in
        let native =
          measure_cell Pipeline.Native ~reps ~batches am.am_op
        in
        let cells =
          List.map
            (fun conf ->
              let s = measure_cell conf ~reps ~batches am.am_op in
              app_overhead ~pct_sys:am.am_pct_sys
                ~mix_overhead:(overhead ~baseline:native s))
            sva_confs
        in
        match cells with
        | [ g; l; s ] ->
            [
              am.am_name;
              Printf.sprintf "%.1f%%sys" am.am_pct_sys;
              Printf.sprintf "%.1fs(paper)" am.am_native_s;
              T.pct g ^ " " ^ T.pct_paper am.am_paper.(0);
              T.pct l ^ " " ^ T.pct_paper am.am_paper.(1);
              T.pct s ^ " " ^ T.pct_paper am.am_paper.(2);
            ]
        | _ -> assert false)
      local_apps
  in
  let net_row name paper f =
    let native = f Pipeline.Native in
    let cells =
      List.map (fun conf -> overhead ~baseline:native (f conf)) sva_confs
    in
    match cells with
    | [ g; l; s ] ->
        [
          name;
          "-";
          "-";
          T.pct g ^ " " ^ T.pct_paper paper.(0);
          T.pct l ^ " " ^ T.pct_paper paper.(1);
          T.pct s ^ " " ^ T.pct_paper paper.(2);
        ]
    | _ -> assert false
  in
  let reps = if quick then 6 else 20 in
  let rows_net =
    [
      net_row "scp (file transfer)" [| 0.0; -1.1; -1.1 |] (fun conf ->
          scp_cell conf ~reps:(reps * 2) ~batches);
      net_row "thttpd (311B)" [| 13.6; 24.0; 61.5 |] (fun conf ->
          http_cell conf ~file:"www.311" ~cgi:false ~reps ~batches);
      net_row "thttpd (85K)" [| 0.0; 0.6; 4.6 |] (fun conf ->
          http_cell conf ~file:"www.85k" ~cgi:false
            ~reps:(max 2 (reps / 4))
            ~batches);
      net_row "thttpd (cgi)" [| 9.4; 17.0; 37.2 |] (fun conf ->
          http_cell conf ~file:"www.311" ~cgi:true ~reps ~batches);
    ]
  in
  T.render
    ~title:"Table 5: application latency increase (vs native)"
    ~note:
      "Columns: measured% (paper%).  Local applications are modelled as \
       fixed user time plus their paper %system-time share of the \
       measured kernel mix.  Shape to check: low-%sys applications see \
       tiny overheads; ldd and small-file thttpd suffer most; large-file \
       thttpd is cheap; cgi sits between (fork cost)."
    [ T.L; T.R; T.R; T.R; T.R; T.R ]
    [ "Test"; "%sys"; "Native"; "SVA-GCC"; "SVA-LLVM"; "SVA-Safe" ]
    (rows_local @ rows_net)

let table6 ?(quick = false) () =
  let batches = if quick then 3 else 5 in
  let reps = if quick then 6 else 20 in
  let cell conf ~file ~cgi ~reps =
    let s = http_cell conf ~file ~cgi ~reps ~batches in
    s
  in
  let row name ~file ~cgi ~bytes paper reps =
    let native = cell Pipeline.Native ~file ~cgi ~reps in
    let cells =
      List.map
        (fun conf ->
          (* bandwidth reduction = per-request slowdown *)
          let s = cell conf ~file ~cgi ~reps in
          overhead ~baseline:native s)
        sva_confs
    in
    match cells with
    | [ g; l; s ] ->
        [
          name;
          Printf.sprintf "%.2fcy/B" (native /. float_of_int bytes);
          T.pct g ^ " " ^ T.pct_paper paper.(0);
          T.pct l ^ " " ^ T.pct_paper paper.(1);
          T.pct s ^ " " ^ T.pct_paper paper.(2);
        ]
    | _ -> assert false
  in
  T.render
    ~title:"Table 6: thttpd bandwidth reduction (vs native)"
    ~note:
      "Columns: measured throughput loss% (paper%).  Shape to check: the \
       311B and cgi workloads lose real bandwidth under SVA-Safe (tens of \
       percent); the 85K workload barely moves."
    [ T.L; T.R; T.R; T.R; T.R ]
    [ "Request"; "Native"; "SVA-GCC"; "SVA-LLVM"; "SVA-Safe" ]
    [
      row "311 B" ~file:"www.311" ~cgi:false ~bytes:311 [| 3.10; 4.59; 33.3 |] reps;
      row "85 KB" ~file:"www.85k" ~cgi:false ~bytes:(85 * 1024)
        [| 0.21; -0.26; 2.33 |]
        (max 2 (reps / 4));
      row "cgi" ~file:"www.311" ~cgi:true ~bytes:311 [| -0.32; -0.46; 21.8 |] reps;
    ]

(* ---------- Table 9 ---------- *)

let table9_variant (v : Kbuild.variant) =
  let built = Kbuild.build ~conf:Pipeline.Sva_safe v in
  let pa = Option.get built.Pipeline.bl_pa in
  let accs = Pointsto.accesses pa in
  let by_kind k =
    List.filter (fun a -> a.Pointsto.acc_kind = k) accs
  in
  let pct_of pred l =
    if l = [] then 0.0
    else
      float_of_int (List.length (List.filter pred l))
      /. float_of_int (List.length l)
      *. 100.0
  in
  let incomplete a = not (Pointsto.is_complete a.Pointsto.acc_node) in
  let th a = Pointsto.is_type_homog a.Pointsto.acc_node in
  (* allocation sites "seen": instrumented sites vs allocator calls hidden
     inside unanalyzed functions *)
  let seen = List.length (Pointsto.alloc_sites pa) in
  let unseen = ref 0 in
  List.iter
    (fun f ->
      if Sva_ir.Func.has_attr f Sva_ir.Func.Noanalyze then
        Sva_ir.Func.iter_instrs f (fun _ i ->
            match i.Sva_ir.Instr.kind with
            | Sva_ir.Instr.Call (Sva_ir.Value.Fn (callee, _), _)
              when Sva_analysis.Allocdecl.find Kbuild.allocators callee <> None ->
                incr unseen
            | _ -> ()))
    built.Pipeline.bl_mod.Sva_ir.Irmod.m_funcs;
  let seen_pct =
    float_of_int seen /. float_of_int (max 1 (seen + !unseen)) *. 100.0
  in
  (v.Kbuild.v_name, seen_pct,
   List.map
     (fun (label, kind) ->
       let l = by_kind kind in
       (label, pct_of incomplete l, pct_of th l))
     [
       ("Loads", Pointsto.Acc_load);
       ("Stores", Pointsto.Acc_store);
       ("Structure indexing", Pointsto.Acc_struct_index);
       ("Array indexing", Pointsto.Acc_array_index);
     ])

let table9 () =
  let paper = function
    | "as-tested" ->
        [ (80.0, 29.0); (75.0, 32.0); (91.0, 16.0); (71.0, 41.0) ]
    | _ -> [ (0.0, 26.0); (0.0, 34.0); (0.0, 12.0); (0.0, 39.0) ]
  in
  let rows =
    List.concat_map
      (fun v ->
        let name, seen_pct, kinds = table9_variant v in
        let refs = paper name in
        List.mapi
          (fun i (label, inc, th) ->
            let pinc, pth = List.nth refs i in
            [
              (if i = 0 then
                 Printf.sprintf "%s (%.1f%% sites seen)" name seen_pct
               else "");
              label;
              T.pct inc ^ " " ^ T.pct_paper pinc;
              T.pct th ^ " " ^ T.pct_paper pth;
            ])
          kinds)
      [ Kbuild.as_tested; Kbuild.entire_kernel ]
  in
  T.render
    ~title:"Table 9: static metrics of the safety-checking compiler"
    ~note:
      "Columns: measured% (paper%).  Shape to check: the as-tested kernel \
       has most accesses on incomplete partitions (unanalyzed mm + \
       userspace); the entire-kernel build has none.  Type-safe fractions \
       are a minority in both (like many large C programs, only worse)."
    [ T.L; T.L; T.R; T.R ]
    [ "Kernel"; "Access type"; "Incomplete"; "Type safe" ]
    rows

(* ---------- exploits ---------- *)

let exploits_table () =
  let rows =
    List.concat_map
      (fun (r : Exploits.report_row) ->
        let base =
          [
            Exploits.name r.Exploits.rr_id;
            Exploits.subsystem r.Exploits.rr_id;
            Exploits.outcome_to_string r.Exploits.rr_native;
            Exploits.outcome_to_string r.Exploits.rr_safe;
          ]
        in
        match r.Exploits.rr_safe_extra with
        | Some o ->
            [ base @ [ "" ];
              [ ""; "  + user-copy library compiled"; ""; Exploits.outcome_to_string o ] ]
        | None -> [ base ])
      (Exploits.report ())
  in
  T.render
    ~title:"Section 7.2: exploit detection (4 of 5 caught; 5th after compiling the extra library)"
    ~note:
      "Paper: SVA prevents 4/5 previously-reported Linux 2.4.22 exploits; \
       the ELF one is missed because the user-copy library was outside the \
       safety-checking compile, and is caught once included."
    [ T.L; T.L; T.L; T.L ]
    [ "Exploit"; "Subsystem"; "Linux-native"; "Linux-SVA-Safe" ]
    (List.map (fun r -> match r with [ a; b; c; d; _ ] -> [ a; b; c; d ] | r -> r) rows)

(* ---------- Section 5 verifier experiment on the kernel ---------- *)

let verifier_experiment () =
  let v = Kbuild.as_tested in
  let m =
    Minic.Lower.compile_strings ~name:"ukern-verif" (Kbuild.sources v)
  in
  Sva_ir.Passes.run Sva_ir.Passes.Llvm_like m;
  let cfg = Kbuild.aconfig v in
  let pa = Pointsto.run ~config:cfg m in
  let mps = Sva_safety.Metapool.infer m pa cfg.Pointsto.allocators in
  let an = Sva_tyck.Tyck.extract m pa mps in
  let results = Sva_tyck.Inject.experiment m an ~instances:5 in
  let caught = List.length (List.filter (fun (_, _, c) -> c) results) in
  let rows =
    List.map
      (fun kind ->
        let mine =
          List.filter (fun (k, _, _) -> k = kind) results
        in
        let c = List.length (List.filter (fun (_, _, x) -> x) mine) in
        [
          Sva_tyck.Inject.kind_name kind;
          string_of_int (List.length mine);
          string_of_int c;
        ])
      Sva_tyck.Inject.all_kinds
  in
  T.render
    ~title:
      (Printf.sprintf
         "Section 5: verifier bug injection on the kernel — %d/%d caught \
          (paper: 20/20)"
         caught (List.length results))
    [ T.L; T.R; T.R ]
    [ "Injected analysis bug"; "Instances"; "Detected" ]
    rows

(* ---------- Figure 2 ---------- *)

let figure2 () =
  let built = image Pipeline.Sva_safe in
  let m = built.Pipeline.bl_mod in
  let pa = Option.get built.Pipeline.bl_pa in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "== Figure 2: fib_create_info after the safety-checking compiler ==\n";
  (match Sva_ir.Irmod.find_func m "fib_create_info" with
  | Some f -> Buffer.add_string buf (Sva_ir.Pp.string_of_func f)
  | None -> Buffer.add_string buf "fib_create_info not found\n");
  Buffer.add_string buf "\n-- points-to partitions of the fib code --\n";
  (match Sva_ir.Irmod.find_func m "fib_create_info" with
  | Some f ->
      let printed = Hashtbl.create 8 in
      List.iteri
        (fun i _ ->
          match Pointsto.reg_node pa ~fname:"fib_create_info" i with
          | Some n when not (Hashtbl.mem printed (Pointsto.node_id n)) ->
              Hashtbl.replace printed (Pointsto.node_id n) ();
              Buffer.add_string buf
                (Printf.sprintf "node %d [%s]%s ty=%s\n" (Pointsto.node_id n)
                   (Pointsto.flags_to_string n)
                   (if Pointsto.is_type_homog n then " TH" else "")
                   (match Pointsto.node_ty n with
                   | Some t -> Sva_ir.Ty.to_string t
                   | None -> "<collapsed>"))
          | _ -> ())
        (List.init f.Sva_ir.Func.f_next_reg (fun i -> i))
  | None -> ());
  Buffer.contents buf

(* ---------- ablations ---------- *)

(* A mixed syscall workload representative of the latency tables. *)
let ablation_workload ctx =
  Workloads.op_open_close ctx;
  Workloads.op_write ctx;
  Workloads.op_pipe_latency ctx;
  Workloads.op_getpid ctx

let ablation ?(quick = false) () =
  let reps = if quick then 10 else 40 in
  let build ?(options = Sva_safety.Checkinsert.default_options)
      ?(clone = false) ?(devirt = false) ?(checkopt = false) ?(lint = false)
      ?(ranges = false) () =
    Pipeline.build ~conf:Pipeline.Sva_safe
      ~aconfig:(Kbuild.aconfig Kbuild.as_tested)
      ~options ~clone ~devirt ~checkopt ~lint ~ranges
      ~lint_config:(Kbuild.lint_config Kbuild.as_tested)
      ~name:"ukern-ablation"
      (Kbuild.sources Kbuild.as_tested)
  in
  let measure built =
    let t = Boot.boot_built built ~variant:Kbuild.as_tested in
    let ctx = Workloads.prepare t in
    ablation_workload ctx;
    Boot.reset_cycles t;
    Sva_rt.Stats.reset ();
    for _ = 1 to reps do
      ablation_workload ctx
    done;
    let s = Sva_rt.Stats.read () in
    ( float_of_int (Boot.cycles t) /. float_of_int reps,
      (s.Sva_rt.Stats.bounds_checks + s.Sva_rt.Stats.ls_checks
      + s.Sva_rt.Stats.funcchecks)
      / reps )
  in
  let variants =
    [
      ("SVA-Safe baseline", build ());
      ("+ check optimizations (Sec 7.1.3)", build ~checkopt:true ());
      ( "- static bounds proofs",
        build
          ~options:
            { Sva_safety.Checkinsert.default_options with
              Sva_safety.Checkinsert.static_bounds = false }
          () );
      ( "- TH load/store elision",
        build
          ~options:
            { Sva_safety.Checkinsert.default_options with
              Sva_safety.Checkinsert.th_elides_lscheck = false }
          () );
      ( "- TH elision + static lint proofs",
        build
          ~options:
            { Sva_safety.Checkinsert.default_options with
              Sva_safety.Checkinsert.th_elides_lscheck = false }
          ~lint:true () );
      ("+ cloning + devirtualization (Sec 4.8)", build ~clone:true ~devirt:true ());
      ("+ range-certified elision (Sec 5)", build ~lint:true ~ranges:true ());
    ]
  in
  let baseline_cycles = ref 0.0 in
  let rows =
    List.mapi
      (fun i (name, built) ->
        let cycles, checks = measure built in
        if i = 0 then baseline_cycles := cycles;
        let stat =
          match built.Pipeline.bl_summary with
          | Some s ->
              Printf.sprintf "%d bounds + %d ls static"
                s.Sva_safety.Checkinsert.bounds_inserted
                s.Sva_safety.Checkinsert.ls_inserted
          | None -> "-"
        in
        let extra =
          (match built.Pipeline.bl_checkopt with
          | Some c ->
              Printf.sprintf " (dedup %d, hoisted %d)"
                c.Sva_safety.Checkopt.co_ls_deduped
                c.Sva_safety.Checkopt.co_bounds_hoisted
          | None -> "")
          ^ (match built.Pipeline.bl_summary with
            | Some s when s.Sva_safety.Checkinsert.ls_proved_static > 0 ->
                Printf.sprintf " (lint-proved %d)"
                  s.Sva_safety.Checkinsert.ls_proved_static
            | _ -> "")
          ^ (match built.Pipeline.bl_summary with
            | Some s when s.Sva_safety.Checkinsert.bounds_static_range > 0 ->
                Printf.sprintf " (range-elided %d)"
                  s.Sva_safety.Checkinsert.bounds_static_range
            | _ -> "")
          ^
          if built.Pipeline.bl_cloned > 0 || built.Pipeline.bl_devirt > 0 then
            Printf.sprintf " (cloned %d, devirt %d)" built.Pipeline.bl_cloned
              built.Pipeline.bl_devirt
          else ""
        in
        [
          name;
          stat ^ extra;
          string_of_int checks;
          Printf.sprintf "%.0fcy" cycles;
          (if i = 0 then "-"
           else T.pct ((cycles -. !baseline_cycles) /. !baseline_cycles *. 100.0));
        ])
      variants
  in
  T.render
    ~title:"Ablation: the paper's proposed/used compiler optimizations"
    ~note:
      "Workload: open/close + write + pipe round-trip + getpid per rep.         Section 7.1.3 predicts the check optimizations 'should greatly        improve the performance overheads for kernel operations'; disabling        the baseline's static proofs or TH elision shows how much they        already save.  The lint row re-enables the safe-access prover on        top of the no-TH build: its proofs recover most of the load/store        checks TH elision was covering.  The range row adds the certified        value-range elision (removing it = the '- range elision' ablation        of EXPERIMENTS.md)."
    [ T.L; T.L; T.R; T.R; T.R ]
    [ "Variant"; "Static instrumentation"; "Checks/op"; "Cycles/op"; "vs base" ]
    rows

(* ---------- check-insertion summary ---------- *)

let check_summary () =
  let built = image Pipeline.Sva_safe in
  match built.Pipeline.bl_summary with
  | None -> "no summary (kernel not built with checks)"
  | Some s ->
      let open Sva_safety.Checkinsert in
      let lint_s = Option.get (snd (entire_pair ())).Pipeline.bl_summary in
      T.render ~title:"Safety-checking compiler: static instrumentation summary"
        ~note:
          "Supports the Section 7.1.3 discussion: the static-bounds column \
           is the optimization that removes provably-safe indexing checks; \
           the lint-proved row is what the sva_lint safe-access prover \
           additionally elides when the lint stage is enabled."
        [ T.L; T.R ]
        [ "Metric"; "Count" ]
        [
          [ "load/store checks inserted"; string_of_int s.ls_inserted ];
          [ "load/store checks elided (TH pools)"; string_of_int s.ls_elided_th ];
          [ "load/store checks off (incomplete pools)";
            string_of_int s.ls_reduced_incomplete ];
          [ "load/store checks elided by lint proofs (entire-kernel build)";
            string_of_int lint_s.ls_proved_static ];
          [ "bounds checks inserted"; string_of_int s.bounds_inserted ];
          [ "geps proven safe statically"; string_of_int s.bounds_static ];
          [ "indirect-call checks inserted"; string_of_int s.funcchecks_inserted ];
          [ "indirect-call checks elided"; string_of_int s.funcchecks_elided ];
          [ "object registrations"; string_of_int s.regs_inserted ];
          [ "object drops"; string_of_int s.drops_inserted ];
          [ "stack objects promoted to heap"; string_of_int s.stack_promoted ];
        ]

(* ---------- fast-path check runtime (lookup cache + pre-decode) ---------- *)

(* The Table 7 syscall mix under SVA-Safe, measured with the per-metapool
   object-lookup cache off and on.  Both runs use the same deterministic
   cycle model; the cache changes how many splay comparisons each check
   performs, not what any check decides. *)
let fastpath_measure ~reps ~cache =
  let t = fresh_kernel Pipeline.Sva_safe in
  (* Caching is per-pool state now (no process-global kill switch), so
     configure this instance's pools and leave every other SVM alone. *)
  List.iter
    (fun (_, mp) -> Sva_rt.Metapool_rt.set_cached mp cache)
    (Sva_interp.Interp.metapools t.Boot.vm);
  let ctx = Workloads.prepare t in
  ablation_workload ctx;
  Boot.reset_cycles t;
  Sva_rt.Stats.reset ();
  let cmp0 = Sva_rt.Splay.comparisons () in
  for _ = 1 to reps do
    ablation_workload ctx
  done;
  let cmp = Sva_rt.Splay.comparisons () - cmp0 in
  let s = Sva_rt.Stats.read () in
  ( float_of_int cmp /. float_of_int reps,
    float_of_int (Boot.cycles t) /. float_of_int reps,
    Sva_rt.Stats.total_checks s / reps,
    Sva_rt.Stats.hit_rate s )

type fastpath_data = {
  fp_cmp_off : float;  (** splay comparisons per op, cache off *)
  fp_cmp_on : float;
  fp_cycles_off : float;
  fp_cycles_on : float;
  fp_checks_off : int;
  fp_checks_on : int;
  fp_hit_rate : float;  (** cache hit rate, percent *)
  fp_reduction : float;  (** comparison reduction factor (off / on) *)
}

let fp_cache : (bool, fastpath_data) Hashtbl.t = Hashtbl.create 2

let fastpath_data ?(quick = false) () =
  match Hashtbl.find_opt fp_cache quick with
  | Some d -> d
  | None ->
      let reps = if quick then 10 else 40 in
      let cmp_off, cyc_off, checks_off, _ =
        fastpath_measure ~reps ~cache:false
      in
      let cmp_on, cyc_on, checks_on, hit = fastpath_measure ~reps ~cache:true in
      let d =
        {
          fp_cmp_off = cmp_off;
          fp_cmp_on = cmp_on;
          fp_cycles_off = cyc_off;
          fp_cycles_on = cyc_on;
          fp_checks_off = checks_off;
          fp_checks_on = checks_on;
          fp_hit_rate = hit;
          fp_reduction = (if cmp_on > 0.0 then cmp_off /. cmp_on else infinity);
        }
      in
      Hashtbl.replace fp_cache quick d;
      d

let fastpath ?(quick = false) ?(strict = false) () =
  let d = fastpath_data ~quick () in
  let cmp_off, cyc_off, checks_off = (d.fp_cmp_off, d.fp_cycles_off, d.fp_checks_off) in
  let cmp_on, cyc_on, checks_on, hit =
    (d.fp_cmp_on, d.fp_cycles_on, d.fp_checks_on, d.fp_hit_rate)
  in
  let reduction = d.fp_reduction in
  let row name cmp cyc checks rate =
    [
      name;
      Printf.sprintf "%.0f" cmp;
      Printf.sprintf "%.0fcy" cyc;
      string_of_int checks;
      rate;
    ]
  in
  let table =
    T.render
      ~title:"Fast path: object-lookup cache on the Table 7 syscall mix (SVA-Safe)"
      ~note:
        (Printf.sprintf
           "Workload: open/close + write + pipe round-trip + getpid per rep. \
            The direct-mapped per-metapool cache answers repeated object \
            lookups without restructuring the splay tree; a hit is charged \
            1 cycle against 3 per splay comparison (DESIGN.md Section 6). \
            Splay comparison reduction: %.1fx (>= 2x required). Checks per \
            op are identical by construction - the cache is semantically \
            invisible."
           reduction)
      [ T.L; T.R; T.R; T.R; T.R ]
      [ "Configuration"; "Splay cmp/op"; "Cycles/op"; "Checks/op"; "Hit rate" ]
      [
        row "cache off (seed lookup path)" cmp_off cyc_off checks_off "-";
        row "cache on" cmp_on cyc_on checks_on (Printf.sprintf "%.1f%%" hit);
      ]
  in
  let failures =
    List.concat
      [
        (if reduction >= 2.0 then []
         else
           [ Printf.sprintf
               "splay comparison reduction %.2fx is below the required 2x"
               reduction ]);
        (if checks_on = checks_off then []
         else
           [ Printf.sprintf
               "cache changed the number of checks performed (%d vs %d)"
               checks_on checks_off ]);
        (if cyc_on <= cyc_off then []
         else
           [ Printf.sprintf
               "cached run costs more model cycles (%.0f vs %.0f)" cyc_on
               cyc_off ]);
      ]
  in
  match failures with
  | [] -> table ^ "  fastpath check: PASS\n"
  | fs ->
      let msg = String.concat "; " fs in
      if strict then failwith ("fastpath check FAILED: " ^ msg)
      else table ^ "  fastpath check: FAIL - " ^ msg ^ "\n"

(* ---------- simulated-SMP scaling ---------- *)

(* The embarrassingly parallel syscall-mix jobs scheduled over 1, 2 and
   4 modeled CPUs with the deterministic work-stealing scheduler
   (Boot.run_smp).  The aggregate check counts must be identical at
   every CPU count — the per-CPU cache shards and stats banks are
   semantically invisible — and the modeled makespan must scale. *)

type smp_point = {
  sp_cpus : int;
  sp_makespan : int;  (** modeled wall time: max per-CPU clock *)
  sp_total : int;  (** total modeled work: sum of per-CPU clocks *)
  sp_speedup : float;  (** makespan(1) / makespan(N) *)
  sp_steals : int;
  sp_ipis_sent : int;
  sp_ipis_delivered : int;
  sp_checks : int;  (** aggregate run-time checks over the whole run *)
}

type smp_data = {
  sd_seed : int;
  sd_jobs : int;
  sd_points : smp_point list;  (** cpus = 1, 2, 4 *)
  sd_seq_cycles : int;  (** the jobs called in sequence, no scheduler *)
  sd_seq_checks : int;
  sd_seq_identical : bool;
      (** run_smp at cpus=1 is bit-identical to the sequential calls *)
  sd_rerun_identical : bool;
      (** a second fresh boot at cpus=4, same seed, reproduced the
          schedule exactly (makespan, steals, IPIs, checks) *)
}

let smp_speedup_floor = 3.0
let smp_cpu_counts = [ 1; 2; 4 ]

(* Fresh boot per measurement: every point starts from the same
   deterministic kernel state, so differences are the scheduler's. *)
let smp_measure ~cpus ~seed ~njobs =
  let t =
    Boot.boot_built
      ~smp:{ Pipeline.smp_cpus = cpus; Pipeline.smp_seed = seed }
      (image Pipeline.Sva_safe) ~variant:Kbuild.as_tested
  in
  let ctx = Workloads.prepare t in
  List.iter (fun j -> j ()) (Workloads.smp_jobs ctx 1);
  Sva_rt.Stats.reset ();
  Boot.reset_cycles t;
  let st = Boot.run_smp t ~cpus ~seed (Workloads.smp_jobs ctx njobs) in
  (st, Sva_rt.Stats.total_checks (Sva_rt.Stats.read ()))

let smp_seq_measure ~njobs =
  let t = fresh_kernel Pipeline.Sva_safe in
  let ctx = Workloads.prepare t in
  List.iter (fun j -> j ()) (Workloads.smp_jobs ctx 1);
  Sva_rt.Stats.reset ();
  Boot.reset_cycles t;
  List.iter (fun j -> j ()) (Workloads.smp_jobs ctx njobs);
  (Boot.cycles t, Sva_rt.Stats.total_checks (Sva_rt.Stats.read ()))

let sd_cache : (bool, smp_data) Hashtbl.t = Hashtbl.create 2

let smp_data ?(quick = false) () =
  match Hashtbl.find_opt sd_cache quick with
  | Some d -> d
  | None ->
      let njobs = if quick then 16 else 32 in
      let seed = 1 in
      let seq_cycles, seq_checks = smp_seq_measure ~njobs in
      let runs =
        List.map
          (fun cpus -> smp_measure ~cpus ~seed ~njobs)
          smp_cpu_counts
      in
      let base =
        match runs with
        | (st, _) :: _ -> st.Boot.ss_makespan
        | [] -> 0
      in
      let points =
        List.map
          (fun ((st : Boot.smp_stats), checks) ->
            {
              sp_cpus = st.Boot.ss_cpus;
              sp_makespan = st.Boot.ss_makespan;
              sp_total = st.Boot.ss_total;
              sp_speedup =
                (if st.Boot.ss_makespan > 0 then
                   float_of_int base /. float_of_int st.Boot.ss_makespan
                 else infinity);
              sp_steals = st.Boot.ss_steals;
              sp_ipis_sent = st.Boot.ss_ipis_sent;
              sp_ipis_delivered = st.Boot.ss_ipis_delivered;
              sp_checks = checks;
            })
          runs
      in
      let seq_identical =
        match runs with
        | (st, checks) :: _ ->
            st.Boot.ss_makespan = seq_cycles && checks = seq_checks
            && st.Boot.ss_steals = 0 && st.Boot.ss_ipis_sent = 0
        | [] -> false
      in
      let rerun_identical =
        let st1, c1 = smp_measure ~cpus:4 ~seed ~njobs in
        match List.rev runs with
        | (st0, c0) :: _ ->
            st0.Boot.ss_makespan = st1.Boot.ss_makespan
            && st0.Boot.ss_total = st1.Boot.ss_total
            && st0.Boot.ss_steals = st1.Boot.ss_steals
            && st0.Boot.ss_ipis_sent = st1.Boot.ss_ipis_sent
            && st0.Boot.ss_ipis_delivered = st1.Boot.ss_ipis_delivered
            && st0.Boot.ss_cycles = st1.Boot.ss_cycles
            && c0 = c1
        | [] -> false
      in
      let d =
        {
          sd_seed = seed;
          sd_jobs = njobs;
          sd_points = points;
          sd_seq_cycles = seq_cycles;
          sd_seq_checks = seq_checks;
          sd_seq_identical = seq_identical;
          sd_rerun_identical = rerun_identical;
        }
      in
      Hashtbl.replace sd_cache quick d;
      d

let smp ?(quick = false) ?(strict = false) () =
  let d = smp_data ~quick () in
  let table =
    T.render
      ~title:
        "Simulated SMP: parallel syscall mix over modeled CPUs (SVA-Safe)"
      ~note:
        (Printf.sprintf
           "%d identical jobs (getpid + getrusage + gettimeofday + sbrk + \
            sigaction + write + pipe round-trip each), distributed \
            round-robin and balanced by the seeded work-stealing scheduler \
            (seed %d).  Makespan is the max per-CPU modeled clock; speedup \
            is makespan(1)/makespan(N) (>= %.1fx at 4 CPUs required).  \
            Aggregate checks are identical at every CPU count by \
            construction - per-CPU cache shards and stats banks are \
            semantically invisible."
           d.sd_jobs d.sd_seed smp_speedup_floor)
      [ T.R; T.R; T.R; T.R; T.R; T.R ]
      [ "CPUs"; "Makespan"; "Speedup"; "Steals"; "IPIs d/s"; "Checks" ]
      (List.map
         (fun p ->
           [
             string_of_int p.sp_cpus;
             Printf.sprintf "%dcy" p.sp_makespan;
             Printf.sprintf "%.2fx" p.sp_speedup;
             string_of_int p.sp_steals;
             Printf.sprintf "%d/%d" p.sp_ipis_delivered p.sp_ipis_sent;
             string_of_int p.sp_checks;
           ])
         d.sd_points)
  in
  let p4 =
    List.find_opt (fun p -> p.sp_cpus = 4) d.sd_points
  in
  let failures =
    List.concat
      [
        (match p4 with
        | Some p when p.sp_speedup < smp_speedup_floor ->
            [ Printf.sprintf
                "4-CPU speedup %.2fx is below the required %.1fx"
                p.sp_speedup smp_speedup_floor ]
        | _ -> []);
        List.concat_map
          (fun p ->
            if p.sp_checks = d.sd_seq_checks then []
            else
              [ Printf.sprintf
                  "check count diverged at %d CPUs (%d vs sequential %d)"
                  p.sp_cpus p.sp_checks d.sd_seq_checks ])
          d.sd_points;
        (if d.sd_seq_identical then []
         else
           [ "run_smp at 1 CPU is not bit-identical to the sequential run"
           ]);
        (if d.sd_rerun_identical then []
         else [ "same-seed rerun did not reproduce the 4-CPU schedule" ]);
      ]
  in
  match failures with
  | [] -> table ^ "  smp check: PASS\n"
  | fs ->
      let msg = String.concat "; " fs in
      if strict then failwith ("smp check FAILED: " ^ msg)
      else table ^ "  smp check: FAIL - " ^ msg ^ "\n"

(* ---------- tiered execution engine ---------- *)

(* The Table 7 syscall mix under SVA-Safe on both execution tiers.  The
   modeled cycle counts and check statistics must be bit-identical — the
   tiered engine is semantically invisible — so the only differing
   columns are host wall-clock time and the tier counters. *)

type tiered_data = {
  td_cycles_interp : float;  (** model cycles per rep *)
  td_cycles_tiered : float;
  td_steps_interp : float;
  td_steps_tiered : float;
  td_checks_interp : int;  (** run-time checks per rep *)
  td_checks_tiered : int;
  td_ns_interp : float;  (** host wall-clock ns per rep (median batch) *)
  td_ns_tiered : float;
  td_speedup : float;  (** host speedup, interp / tiered *)
  td_promotions : int;
  td_tcache_hits : int;
  td_tcache_misses : int;
  td_sig_verifications : int;
  td_disk_hits : int;
  td_disk_stale : int;
  td_disk_writes : int;
  td_superblocks : int;
}

(* Promote early in the bench so the warm-up pass already compiles the
   hot functions; measurement then runs fully on the second tier. *)
let tiered_bench_engine =
  { Pipeline.default_engine with Pipeline.eng_kind = Pipeline.Tiered; eng_threshold = 2 }

let tiered_measure ~reps ~engine =
  let t =
    Boot.boot_built ?engine (image Pipeline.Sva_safe) ~variant:Kbuild.as_tested
  in
  let ctx = Workloads.prepare t in
  for _ = 1 to 3 do
    ablation_workload ctx
  done;
  Boot.reset_cycles t;
  Boot.reset_steps t;
  Sva_rt.Stats.reset ();
  for _ = 1 to reps do
    ablation_workload ctx
  done;
  let s = Sva_rt.Stats.read () in
  let cycles = float_of_int (Boot.cycles t) /. float_of_int reps in
  let steps = float_of_int (Boot.steps t) /. float_of_int reps in
  let checks = Sva_rt.Stats.total_checks s / reps in
  let wall =
    Timing.measure ~batches:5 ~reps:(max 5 reps) (fun () ->
        ablation_workload ctx)
  in
  (cycles, steps, checks, wall.Timing.s_per_op_ns)

let td_cache : (bool, tiered_data) Hashtbl.t = Hashtbl.create 2

let tiered_data ?(quick = false) () =
  match Hashtbl.find_opt td_cache quick with
  | Some d -> d
  | None ->
      let reps = if quick then 10 else 40 in
      let icyc, istep, ichk, ins = tiered_measure ~reps ~engine:None in
      Sva_interp.Closcomp.clear_cache ();
      Sva_rt.Stats.reset_tier ();
      let tcyc, tstep, tchk, tns =
        tiered_measure ~reps ~engine:(Some tiered_bench_engine)
      in
      let tier = Sva_rt.Stats.read_tier () in
      let d =
        {
          td_cycles_interp = icyc;
          td_cycles_tiered = tcyc;
          td_steps_interp = istep;
          td_steps_tiered = tstep;
          td_checks_interp = ichk;
          td_checks_tiered = tchk;
          td_ns_interp = ins;
          td_ns_tiered = tns;
          td_speedup = (if tns > 0.0 then ins /. tns else infinity);
          td_promotions = tier.Sva_rt.Stats.promotions;
          td_tcache_hits = tier.Sva_rt.Stats.tcache_hits;
          td_tcache_misses = tier.Sva_rt.Stats.tcache_misses;
          td_sig_verifications = tier.Sva_rt.Stats.sig_verifications;
          td_disk_hits = tier.Sva_rt.Stats.tcache_disk_hits;
          td_disk_stale = tier.Sva_rt.Stats.tcache_disk_stale;
          td_disk_writes = tier.Sva_rt.Stats.tcache_disk_writes;
          td_superblocks = tier.Sva_rt.Stats.superblocks;
        }
      in
      Hashtbl.replace td_cache quick d;
      d

(* The wall-clock gate must hold on loaded CI machines; the measured
   speedup on the syscall mix is well above this floor. *)
let tiered_speedup_floor = 1.3

let tiered ?(quick = false) ?(strict = false) () =
  let d = tiered_data ~quick () in
  let row name cyc steps checks ns =
    [
      name;
      Printf.sprintf "%.0fcy" cyc;
      Printf.sprintf "%.0f" steps;
      string_of_int checks;
      Printf.sprintf "%.0fns" ns;
    ]
  in
  let table =
    T.render
      ~title:
        "Tiered engine: closure-compiled hot functions on the Table 7 \
         syscall mix (SVA-Safe)"
      ~note:
        (Printf.sprintf
           "Workload: open/close + write + pipe round-trip + getpid per rep. \
            The tiered engine promotes functions after %d calls, compiles \
            them to fused closure chains, and records each translation in \
            the signed cache (Section 3.4: %d promotions, %d/%d cache \
            hits, %d signature verifications).  Modeled cycles, steps and \
            checks are identical by construction; host speedup %.1fx \
            (>= %.1fx required)."
           tiered_bench_engine.Pipeline.eng_threshold d.td_promotions
           d.td_tcache_hits
           (d.td_tcache_hits + d.td_tcache_misses)
           d.td_sig_verifications d.td_speedup tiered_speedup_floor)
      [ T.L; T.R; T.R; T.R; T.R ]
      [ "Engine"; "Cycles/op"; "Steps/op"; "Checks/op"; "Host/op" ]
      [
        row "interpreter" d.td_cycles_interp d.td_steps_interp
          d.td_checks_interp d.td_ns_interp;
        row "tiered" d.td_cycles_tiered d.td_steps_tiered d.td_checks_tiered
          d.td_ns_tiered;
      ]
  in
  let failures =
    List.concat
      [
        (if d.td_cycles_tiered = d.td_cycles_interp then []
         else
           [ Printf.sprintf
               "tiered engine changed modeled cycles (%.0f vs %.0f)"
               d.td_cycles_tiered d.td_cycles_interp ]);
        (if d.td_steps_tiered = d.td_steps_interp then []
         else
           [ Printf.sprintf "tiered engine changed step counts (%.0f vs %.0f)"
               d.td_steps_tiered d.td_steps_interp ]);
        (if d.td_checks_tiered = d.td_checks_interp then []
         else
           [ Printf.sprintf
               "tiered engine changed the number of checks (%d vs %d)"
               d.td_checks_tiered d.td_checks_interp ]);
        (if d.td_promotions > 0 then []
         else [ "tiered engine promoted no functions" ]);
        (if d.td_speedup >= tiered_speedup_floor then []
         else
           [ Printf.sprintf "host speedup %.2fx is below the required %.1fx"
               d.td_speedup tiered_speedup_floor ]);
      ]
  in
  match failures with
  | [] -> table ^ "  tiered check: PASS\n"
  | fs ->
      let msg = String.concat "; " fs in
      if strict then failwith ("tiered check FAILED: " ^ msg)
      else table ^ "  tiered check: FAIL - " ^ msg ^ "\n"

(* ---------- AOT engine + persistent translation store ---------- *)

(* Whole-kernel closure compilation at instantiate time against a
   persistent signed store: boot the AOT kernel twice through the same
   --tcache-dir, first cold (every translation is fresh and persisted)
   then warm with the in-memory cache cleared, simulating a second
   process (every translation is a verified disk hit, zero
   re-translations).  The warm VM then runs the Table 7 mix; the modeled
   numbers must match the interpreter's bit-for-bit and the hot-path
   wall clock must clear the warm-cache speedup floor. *)

type aot_data = {
  ad_cycles_aot : float;
  ad_steps_aot : float;
  ad_checks_aot : int;
  ad_ns_aot : float;
  ad_speedup : float;  (** host speedup over the interpreter *)
  ad_boot_cold_ns : float;  (** instantiate + compile_all, empty store *)
  ad_boot_warm_ns : float;  (** same, against the populated store *)
  ad_promotions : int;  (** functions AOT-compiled per boot *)
  ad_disk_writes_cold : int;
  ad_disk_hits_warm : int;
  ad_disk_stale_warm : int;
  ad_misses_warm : int;  (** re-translations in the warm boot (want 0) *)
  ad_superblocks : int;  (** trace superblocks formed per boot *)
}

let ad_cache : (bool, aot_data) Hashtbl.t = Hashtbl.create 2

let aot_data ?(quick = false) () =
  match Hashtbl.find_opt ad_cache quick with
  | Some d -> d
  | None ->
      let reps = if quick then 10 else 40 in
      (* Measure the baseline first: computing it lazily below would boot
         interpreter/tiered kernels while the persistent store is still
         globally active. *)
      let td = tiered_data ~quick () in
      let dir = Filename.temp_dir "sva-tcache" "" in
      let engine =
        Some
          { Pipeline.default_engine with
            Pipeline.eng_kind = Pipeline.Aot;
            eng_tcache_dir = Some dir }
      in
      let boot_once () =
        (* a cleared in-memory cache is what a fresh process starts with *)
        Sva_interp.Closcomp.clear_cache ();
        Sva_rt.Stats.reset_tier ();
        let t0 = Unix.gettimeofday () in
        let t =
          Boot.boot_built ?engine (image Pipeline.Sva_safe)
            ~variant:Kbuild.as_tested
        in
        let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
        (t, ns, Sva_rt.Stats.read_tier ())
      in
      let d =
        Fun.protect
          ~finally:(fun () ->
            Sva_interp.Tcache_disk.set_dir None;
            Sva_interp.Closcomp.clear_cache ();
            Sva_rt.Stats.reset_tier ())
          (fun () ->
            let _, cold_ns, cold = boot_once () in
            let t, warm_ns, warm = boot_once () in
            let ctx = Workloads.prepare t in
            for _ = 1 to 3 do
              ablation_workload ctx
            done;
            Boot.reset_cycles t;
            Boot.reset_steps t;
            Sva_rt.Stats.reset ();
            for _ = 1 to reps do
              ablation_workload ctx
            done;
            let s = Sva_rt.Stats.read () in
            let cycles = float_of_int (Boot.cycles t) /. float_of_int reps in
            let steps = float_of_int (Boot.steps t) /. float_of_int reps in
            let checks = Sva_rt.Stats.total_checks s / reps in
            let wall =
              Timing.measure ~batches:5 ~reps:(max 5 reps) (fun () ->
                  ablation_workload ctx)
            in
            let ns = wall.Timing.s_per_op_ns in
            {
              ad_cycles_aot = cycles;
              ad_steps_aot = steps;
              ad_checks_aot = checks;
              ad_ns_aot = ns;
              ad_speedup = (if ns > 0.0 then td.td_ns_interp /. ns else infinity);
              ad_boot_cold_ns = cold_ns;
              ad_boot_warm_ns = warm_ns;
              ad_promotions = warm.Sva_rt.Stats.promotions;
              ad_disk_writes_cold = cold.Sva_rt.Stats.tcache_disk_writes;
              ad_disk_hits_warm = warm.Sva_rt.Stats.tcache_disk_hits;
              ad_disk_stale_warm = warm.Sva_rt.Stats.tcache_disk_stale;
              ad_misses_warm = warm.Sva_rt.Stats.tcache_misses;
              ad_superblocks = warm.Sva_rt.Stats.superblocks;
            })
      in
      Hashtbl.replace ad_cache quick d;
      d

(* Table 7 mix, warm persistent cache.  Must hold on loaded CI machines;
   enforced only under --strict so the json-producing runtest rule can't
   flake on wall clock. *)
let aot_speedup_floor = 2.0

let aot ?(quick = false) ?(strict = false) () =
  let d = aot_data ~quick () in
  let td = tiered_data ~quick () in
  let row name cyc steps checks ns =
    [
      name;
      Printf.sprintf "%.0fcy" cyc;
      Printf.sprintf "%.0f" steps;
      string_of_int checks;
      Printf.sprintf "%.0fns" ns;
    ]
  in
  let table =
    T.render
      ~title:
        "AOT engine: whole-kernel closure compilation with a persistent \
         signed translation store (SVA-Safe, Table 7 mix)"
      ~note:
        (Printf.sprintf
           "Cold boot compiles %d functions (%d signed entries persisted, \
            %d superblocks) in %.1fms; the warm boot simulates a second \
            process against the populated store: %d verified disk hits, %d \
            re-translations, %.1fms.  Modeled cycles, steps and checks are \
            bit-identical to the interpreter's; warm hot-path speedup \
            %.1fx (>= %.1fx under --strict)."
           d.ad_promotions d.ad_disk_writes_cold d.ad_superblocks
           (d.ad_boot_cold_ns /. 1e6)
           d.ad_disk_hits_warm d.ad_misses_warm
           (d.ad_boot_warm_ns /. 1e6)
           d.ad_speedup aot_speedup_floor)
      [ T.L; T.R; T.R; T.R; T.R ]
      [ "Engine"; "Cycles/op"; "Steps/op"; "Checks/op"; "Host/op" ]
      [
        row "interpreter" td.td_cycles_interp td.td_steps_interp
          td.td_checks_interp td.td_ns_interp;
        row "tiered (warm)" td.td_cycles_tiered td.td_steps_tiered
          td.td_checks_tiered td.td_ns_tiered;
        row "aot (warm disk)" d.ad_cycles_aot d.ad_steps_aot d.ad_checks_aot
          d.ad_ns_aot;
      ]
  in
  let failures =
    List.concat
      [
        (if d.ad_cycles_aot = td.td_cycles_interp then []
         else
           [ Printf.sprintf "aot engine changed modeled cycles (%.0f vs %.0f)"
               d.ad_cycles_aot td.td_cycles_interp ]);
        (if d.ad_steps_aot = td.td_steps_interp then []
         else
           [ Printf.sprintf "aot engine changed step counts (%.0f vs %.0f)"
               d.ad_steps_aot td.td_steps_interp ]);
        (if d.ad_checks_aot = td.td_checks_interp then []
         else
           [ Printf.sprintf "aot engine changed the number of checks (%d vs %d)"
               d.ad_checks_aot td.td_checks_interp ]);
        (if d.ad_promotions > 0 then []
         else [ "aot engine compiled no functions" ]);
        (if d.ad_disk_writes_cold > 0 then []
         else [ "cold boot persisted no translations" ]);
        (if d.ad_disk_hits_warm >= 1 then []
         else [ "warm boot reused no translations from the store" ]);
        (if d.ad_misses_warm = 0 then []
         else
           [ Printf.sprintf
               "warm boot re-translated %d functions against a populated store"
               d.ad_misses_warm ]);
        (if d.ad_superblocks > 0 then []
         else [ "translator formed no trace superblocks" ]);
        (if (not strict) || d.ad_speedup >= aot_speedup_floor then []
         else
           [ Printf.sprintf
               "warm-cache host speedup %.2fx is below the required %.1fx"
               d.ad_speedup aot_speedup_floor ]);
      ]
  in
  match failures with
  | [] -> table ^ "  aot check: PASS\n"
  | fs ->
      let msg = String.concat "; " fs in
      if strict then failwith ("aot check FAILED: " ^ msg)
      else table ^ "  aot check: FAIL - " ^ msg ^ "\n"

(* ---------- observability: event trace + profiler ---------- *)

type trace_data = {
  tr_reps : int;
  tr_cycles_off : int;  (** total modeled cycles, observability off *)
  tr_cycles_on : int;  (** same workload, trace + profiler on *)
  tr_checks_off : int;
  tr_checks_on : int;
  tr_emitted : int;
  tr_retained : int;
  tr_dropped : int;
  tr_counts : (string * int) list;  (** retained events per kind *)
  tr_attr_pct : float;  (** syscall-attributed share of modeled cycles *)
  tr_fn_rows : Sva_rt.Trace.prow list;
  tr_sys_rows : Sva_rt.Trace.prow list;
  tr_pools : Sva_rt.Metapool_rt.metrics list;
  tr_chrome : Jsonout.t;  (** Chrome trace-event document *)
}

(* One measured run of the Table 7 syscall mix on a fresh SVA-Safe
   kernel.  Identical reset discipline with observability on and off —
   the whole point is that the two runs must agree bit-for-bit on
   modeled cycles and check counts. *)
let trace_measure ~reps ~obs =
  if obs then begin
    Sva_rt.Trace.enable ();
    Sva_rt.Trace.enable_profile ()
  end;
  Fun.protect
    ~finally:(fun () ->
      if obs then begin
        Sva_rt.Trace.disable ();
        Sva_rt.Trace.disable_profile ()
      end)
    (fun () ->
      let t = Boot.boot_built (image Pipeline.Sva_safe) ~variant:Kbuild.as_tested in
      let ctx = Workloads.prepare t in
      ablation_workload ctx;
      Boot.reset_cycles t;
      (* Full reset at a measurement boundary: check, tier and range
         counter families together (reset_all, not the check-only
         reset). *)
      Sva_rt.Stats.reset_all ();
      if obs then begin
        Sva_rt.Trace.clear ();
        (* enable_profile doubles as the accumulator reset *)
        Sva_rt.Trace.enable_profile ()
      end;
      List.iter
        (fun (_, mp) -> Sva_rt.Metapool_rt.reset_metrics mp)
        (Sva_interp.Interp.metapools t.Boot.vm);
      for _ = 1 to reps do
        ablation_workload ctx
      done;
      let cycles = Boot.cycles t in
      let checks = Sva_rt.Stats.total_checks (Sva_rt.Stats.read ()) in
      let extras =
        if not obs then None
        else
          let take n l = List.filteri (fun i _ -> i < n) l in
          Some
            ( Sva_rt.Trace.emitted (),
              List.length (Sva_rt.Trace.events ()),
              Sva_rt.Trace.dropped (),
              List.filter_map
                (fun k ->
                  let n = Sva_rt.Trace.count k in
                  if n = 0 then None
                  else Some (Sva_rt.Trace.ekind_name k, n))
                Traceout.all_kinds,
              (if cycles = 0 then 0.0
               else
                 100.0
                 *. float_of_int (Sva_rt.Trace.sys_self_cycles ())
                 /. float_of_int cycles),
              take 10 (Sva_rt.Trace.fn_report ()),
              take 10 (Sva_rt.Trace.sys_report ()),
              List.filter
                (fun (m : Sva_rt.Metapool_rt.metrics) ->
                  m.Sva_rt.Metapool_rt.m_regs > 0
                  || m.Sva_rt.Metapool_rt.m_lookups > 0)
                (List.map
                   (fun (_, mp) -> Sva_rt.Metapool_rt.metrics mp)
                   (Sva_interp.Interp.metapools t.Boot.vm)),
              Traceout.chrome_json () )
      in
      (cycles, checks, extras))

let tr_cache : (bool, trace_data) Hashtbl.t = Hashtbl.create 2

let trace_data ?(quick = false) () =
  match Hashtbl.find_opt tr_cache quick with
  | Some d -> d
  | None ->
      let reps = if quick then 5 else 20 in
      let cycles_off, checks_off, _ = trace_measure ~reps ~obs:false in
      let cycles_on, checks_on, extras = trace_measure ~reps ~obs:true in
      let emitted, retained, dropped, counts, attr, fn_rows, sys_rows, pools,
          chrome =
        Option.get extras
      in
      let d =
        {
          tr_reps = reps;
          tr_cycles_off = cycles_off;
          tr_cycles_on = cycles_on;
          tr_checks_off = checks_off;
          tr_checks_on = checks_on;
          tr_emitted = emitted;
          tr_retained = retained;
          tr_dropped = dropped;
          tr_counts = counts;
          tr_attr_pct = attr;
          tr_fn_rows = fn_rows;
          tr_sys_rows = sys_rows;
          tr_pools = pools;
          tr_chrome = chrome;
        }
      in
      Hashtbl.replace tr_cache quick d;
      d

let trace_attribution_floor = 95.0

let trace ?(quick = false) ?(strict = false) () =
  let d = trace_data ~quick () in
  let invariance =
    T.render
      ~title:"Observability invariance: Table 7 syscall mix, trace+profiler"
      ~note:
        (Printf.sprintf
           "Same fresh kernel and reset discipline; recording %d events \
            (%d retained, %d dropped by ring wrap) must not move a single \
            modeled cycle or check."
           d.tr_emitted d.tr_retained d.tr_dropped)
      [ T.L; T.R; T.R ]
      [ "Metric"; "obs off"; "obs on" ]
      [
        [ "modeled cycles"; string_of_int d.tr_cycles_off;
          string_of_int d.tr_cycles_on ];
        [ "run-time checks"; string_of_int d.tr_checks_off;
          string_of_int d.tr_checks_on ];
      ]
  in
  let events =
    T.render ~title:"Event trace summary"
      ~note:
        (Printf.sprintf "%d reps of open/close + write + pipe + getpid"
           d.tr_reps)
      [ T.L; T.R ]
      [ "event kind"; "retained" ]
      (List.map (fun (k, n) -> [ k; string_of_int n ]) d.tr_counts)
  in
  let prof_rows rows =
    List.map
      (fun (r : Sva_rt.Trace.prow) ->
        [
          r.Sva_rt.Trace.p_name;
          string_of_int r.Sva_rt.Trace.p_calls;
          string_of_int r.Sva_rt.Trace.p_self_cycles;
          string_of_int r.Sva_rt.Trace.p_total_cycles;
          string_of_int r.Sva_rt.Trace.p_self_checks;
        ])
      rows
  in
  let prof_aligns = [ T.L; T.R; T.R; T.R; T.R ] in
  let prof_header = [ "scope"; "calls"; "self cyc"; "total cyc"; "checks" ] in
  let hot_sys =
    T.render ~title:"Hot syscalls (top 10 by self cycles)"
      ~note:
        (Printf.sprintf
           "syscall scopes attribute %s of all modeled cycles (>= %s \
            required); the remainder is boot/idle work outside any trap"
           (T.pct d.tr_attr_pct)
           (T.pct trace_attribution_floor))
      prof_aligns prof_header (prof_rows d.tr_sys_rows)
  in
  let hot_fn =
    T.render ~title:"Hot kernel functions (top 10 by self cycles)"
      ~note:"self = inclusive minus callees; totals double-count recursion"
      prof_aligns prof_header (prof_rows d.tr_fn_rows)
  in
  let pools = Traceout.pool_metrics_table d.tr_pools in
  let table = invariance ^ events ^ hot_sys ^ hot_fn ^ pools in
  let failures =
    List.concat
      [
        (if d.tr_cycles_on = d.tr_cycles_off then []
         else
           [ Printf.sprintf "tracing changed modeled cycles (%d vs %d)"
               d.tr_cycles_on d.tr_cycles_off ]);
        (if d.tr_checks_on = d.tr_checks_off then []
         else
           [ Printf.sprintf "tracing changed check counts (%d vs %d)"
               d.tr_checks_on d.tr_checks_off ]);
        (if d.tr_emitted > 0 then [] else [ "no events were recorded" ]);
        (if d.tr_attr_pct >= trace_attribution_floor then []
         else
           [ Printf.sprintf
               "profiler attributed only %.1f%% of cycles to syscalls \
                (>= %.0f%% required)"
               d.tr_attr_pct trace_attribution_floor ]);
      ]
  in
  match failures with
  | [] -> table ^ "  trace check: PASS\n"
  | fs ->
      let msg = String.concat "; " fs in
      if strict then failwith ("trace check FAILED: " ^ msg)
      else table ^ "  trace check: FAIL - " ^ msg ^ "\n"

(* ---------- static lint layer ---------- *)

type lint_data = {
  ld_counts : (string * int) list;  (** findings per checker, clean kernel *)
  ld_findings : int;
  ld_proofs : int;
  ld_funcs : int;
  ld_iterations : int;
  ld_ls_inserted_base : int;  (** load/store checks, lint off *)
  ld_ls_inserted_lint : int;  (** load/store checks, lint proofs consumed *)
  ld_ls_proved_static : int;  (** checks elided by the prover *)
}

let lint_data () =
  let lb = lint_image () in
  let r = Option.get lb.Pipeline.bl_lint in
  let off, on = entire_pair () in
  let s0 = Option.get off.Pipeline.bl_summary in
  let s = Option.get on.Pipeline.bl_summary in
  {
    ld_counts = r.Sva_lint.Lint.lr_counts;
    ld_findings = List.length r.Sva_lint.Lint.lr_findings;
    ld_proofs = r.Sva_lint.Lint.lr_proof_count;
    ld_funcs = r.Sva_lint.Lint.lr_funcs;
    ld_iterations = r.Sva_lint.Lint.lr_iterations;
    ld_ls_inserted_base = s0.Sva_safety.Checkinsert.ls_inserted;
    ld_ls_inserted_lint = s.Sva_safety.Checkinsert.ls_inserted;
    ld_ls_proved_static = s.Sva_safety.Checkinsert.ls_proved_static;
  }

let lint_table () =
  let d = lint_data () in
  let rows =
    List.map
      (fun (checker, n) -> [ "findings: " ^ checker; string_of_int n ])
      d.ld_counts
    @ [
        [ "accesses proved safe"; string_of_int d.ld_proofs ];
        [ "functions analyzed"; string_of_int d.ld_funcs ];
        [ "dataflow block visits"; string_of_int d.ld_iterations ];
        [ "ls checks inserted, entire kernel (lint off)";
          string_of_int d.ld_ls_inserted_base ];
        [ "ls checks inserted, entire kernel (lint on)";
          string_of_int d.ld_ls_inserted_lint ];
        [ "ls checks elided by proofs"; string_of_int d.ld_ls_proved_static ];
      ]
  in
  T.render
    ~title:"Static lint layer: kernel sanitizer passes + safe-access prover"
    ~note:
      "The shipped kernel must lint clean (every findings row 0); the \
       sva_lint --fixture run covers the seeded-bug positives.  The prover \
       feeds Checkinsert: on the entire-kernel build (every pool \
       complete) the lint-on build inserts fewer load/store checks than \
       lint-off by exactly the elided row."
    [ T.L; T.R ]
    [ "Metric"; "Count" ]
    rows

(* ---------- value-range elision (Section 5 certificates) ---------- *)

type ranges_data = {
  rd_ls_off : int;  (** ls checks, entire kernel, lint on, ranges off *)
  rd_ls_on : int;  (** same build with certified range elision *)
  rd_ls_range_geps : int;  (** lint proofs whose in-bounds step used ranges *)
  rd_bounds_off : int;
  rd_bounds_on : int;
  rd_bounds_cert : int;  (** geps elided via a verified bounds certificate *)
  rd_certs_bounds : int;  (** certificates re-verified by Rangecert *)
  rd_certs_ls : int;
  rd_facts : int;
  rd_iterations : int;
}

(* ranges-off is the lint-on entire-kernel build already cached by
   [entire_pair]; ranges-on rebuilds it with the interval analysis, its
   certified elisions, and the trusted-checker gate (the build fails if
   any certificate is rejected, so a successful pair implies the whole
   bundle re-verified). *)
let range_pair_cache : (Pipeline.built * Pipeline.built) option ref = ref None

let range_pair () =
  match !range_pair_cache with
  | Some p -> p
  | None ->
      let _, off = entire_pair () in
      let on =
        Kbuild.build ~conf:Pipeline.Sva_safe ~lint:true ~ranges:true
          Kbuild.entire_kernel
      in
      range_pair_cache := Some (off, on);
      (off, on)

let rd_cache : ranges_data option ref = ref None

let ranges_data () =
  match !rd_cache with
  | Some d -> d
  | None ->
      let off, on = range_pair () in
      let s0 = Option.get off.Pipeline.bl_summary in
      let s1 = Option.get on.Pipeline.bl_summary in
      let lr = Option.get on.Pipeline.bl_lint in
      let rr = Option.get on.Pipeline.bl_ranges in
      let cb, cl = Sva_analysis.Interval.cert_counts rr in
      let d =
        {
          rd_ls_off = s0.Sva_safety.Checkinsert.ls_inserted;
          rd_ls_on = s1.Sva_safety.Checkinsert.ls_inserted;
          rd_ls_range_geps = lr.Sva_lint.Lint.lr_range_geps;
          rd_bounds_off = s0.Sva_safety.Checkinsert.bounds_inserted;
          rd_bounds_on = s1.Sva_safety.Checkinsert.bounds_inserted;
          rd_bounds_cert = s1.Sva_safety.Checkinsert.bounds_static_range;
          rd_certs_bounds = cb;
          rd_certs_ls = cl;
          rd_facts = Sva_analysis.Interval.fact_count rr;
          rd_iterations = Sva_analysis.Interval.iterations rr;
        }
      in
      rd_cache := Some d;
      d

let ranges_table () =
  let d = ranges_data () in
  T.render
    ~title:
      "Value-range elision: interval analysis + verified certificates \
       (entire kernel, lint on)"
    ~note:
      "Every elision is backed by a per-gep range certificate that the \
       trusted checker (Sva_tyck.Rangecert) re-verified during the build \
       - the analysis itself stays outside the TCB (Section 5).  Shape \
       to check: both static check columns drop when ranges are on, and \
       the bounds drop equals the certified-gep count."
    [ T.L; T.R ]
    [ "Metric"; "Count" ]
    [
      [ "ls checks inserted (ranges off)"; string_of_int d.rd_ls_off ];
      [ "ls checks inserted (ranges on)"; string_of_int d.rd_ls_on ];
      [ "ls-check geps proved via range facts";
        string_of_int d.rd_ls_range_geps ];
      [ "bounds checks inserted (ranges off)"; string_of_int d.rd_bounds_off ];
      [ "bounds checks inserted (ranges on)"; string_of_int d.rd_bounds_on ];
      [ "bounds elided via certificates"; string_of_int d.rd_bounds_cert ];
      [ "certificates verified (bounds + lscheck)";
        Printf.sprintf "%d + %d" d.rd_certs_bounds d.rd_certs_ls ];
      [ "interval facts exported"; string_of_int d.rd_facts ];
      [ "dataflow block visits"; string_of_int d.rd_iterations ];
    ]

(* ---------- concurrency-safety pass (lockset + atomicity certs) ---------- *)

module Lockset = Sva_analysis.Lockset
module Atomcert = Sva_tyck.Atomcert

type race_data = {
  rc_counts : (string * int) list;
      (** findings per checker, shipped kernel (must all be 0) *)
  rc_shared : int;
  rc_accesses : int;
  rc_certs : int;
  rc_fact_claims : int;
  rc_cert_errors : int;  (** trusted-checker rejections, clean kernel *)
  rc_lock_edges : int;
  rc_funcs : int;
  rc_iterations : int;
  rc_fixture_findings : int;
  rc_fixture_match : bool;  (** fixture findings = seeded ground truth *)
  rc_injected : int;  (** certificate-bug injection experiment *)
  rc_caught : int;
  rc_conc : Sva_rt.Stats.conc_snapshot;  (** runtime ops, smoke workload *)
}

let race_checkers =
  [ "race"; "deadlock"; "cli-imbalance"; "lock-imbalance"; "atomic-sleep" ]

(* The shipped kernel built with the concurrency gate on: Pipeline.build
   runs the lockset analysis and fails the build outright if the trusted
   checker rejects any atomicity certificate, so a cached image implies
   the clean-kernel bundle re-verified. *)
let race_image_cache : Pipeline.built option ref = ref None

let race_image () =
  match !race_image_cache with
  | Some b -> b
  | None ->
      let b =
        Kbuild.build ~conf:Pipeline.Sva_safe ~races:true Kbuild.as_tested
      in
      race_image_cache := Some b;
      b

let rc_cache : race_data option ref = ref None

let race_data () =
  match !rc_cache with
  | Some d -> d
  | None ->
      let b = race_image () in
      let clean = Option.get b.Pipeline.bl_races in
      let clean_errs =
        Sva_tyck.Atomcert.check
          ~entries:(Lockset.entry_config clean)
          b.Pipeline.bl_mod (Lockset.bundle clean)
      in
      (* The race fixture is analyzed standalone (kernel + seeded bugs);
         it cannot go through the pipeline gate, which refuses to build
         modules with findings worth gating on. *)
      let v = Kbuild.as_tested in
      let fm =
        Pipeline.compile ~name:"bench-races-fixture"
          (Kbuild.race_fixture_sources v)
      in
      let fpa = Pointsto.run ~config:(Kbuild.aconfig v) fm in
      let dirty = Lockset.run fm fpa in
      let got =
        List.map
          (fun (f : Lockset.finding) ->
            (f.Lockset.lf_checker, f.Lockset.lf_func))
          (Lockset.findings dirty)
        |> List.sort_uniq compare
      in
      let want = List.sort_uniq compare Ukern.Ksrc_racebugs.expected in
      let entries = Lockset.entry_config dirty in
      let results =
        Atomcert.experiment ~entries fm (Lockset.bundle dirty) ~instances:3
      in
      let caught = List.length (List.filter (fun (_, _, c) -> c) results) in
      (* Runtime counters: boot the gated image and run the lock-heavy
         slice of the smoke workload (file create, socket, packet
         delivery through the masked netpoll section). *)
      let t = Boot.boot_built b ~variant:v in
      Sva_rt.Stats.reset_all ();
      Boot.write_user t 0 "conc.txt\000";
      ignore (Boot.syscall t 4 [ Boot.user_addr t 0; 1L ]);
      let sd = Boot.syscall t 14 [ 17L ] in
      ignore (Boot.syscall t 15 [ sd; 4242L ]);
      let hdr = Bytes.create 4 in
      Bytes.set_int32_le hdr 0 4242l;
      Boot.inject_frame t ~proto:17 (Bytes.to_string hdr ^ "ping");
      ignore (Boot.syscall t 22 []);
      let conc = Sva_rt.Stats.read_conc () in
      let d =
        {
          rc_counts =
            List.map (fun c -> (c, Lockset.count_findings clean c)) race_checkers;
          rc_shared = Lockset.shared_count clean;
          rc_accesses = Lockset.access_count clean;
          rc_certs = Lockset.cert_count clean;
          rc_fact_claims = Lockset.fact_count clean;
          rc_cert_errors = List.length clean_errs;
          rc_lock_edges = List.length (Lockset.lock_edges clean);
          rc_funcs = Lockset.funcs_analyzed clean;
          rc_iterations = Lockset.iterations clean;
          rc_fixture_findings = List.length (Lockset.findings dirty);
          rc_fixture_match = got = want;
          rc_injected = List.length results;
          rc_caught = caught;
          rc_conc = conc;
        }
      in
      rc_cache := Some d;
      d

let race_table ?(strict = false) () =
  let d = race_data () in
  let rows =
    List.map
      (fun (checker, n) -> [ "findings: " ^ checker; string_of_int n ])
      d.rc_counts
    @ [
        [ "shared memory classes (irq- and sys-reachable)";
          string_of_int d.rc_shared ];
        [ "classified accesses"; string_of_int d.rc_accesses ];
        [ "atomicity certificates (re-verified)"; string_of_int d.rc_certs ];
        [ "block-entry fact claims"; string_of_int d.rc_fact_claims ];
        [ "certificate errors"; string_of_int d.rc_cert_errors ];
        [ "lock-order edges"; string_of_int d.rc_lock_edges ];
        [ "functions analyzed"; string_of_int d.rc_funcs ];
        [ "dataflow block visits"; string_of_int d.rc_iterations ];
        [ "fixture findings (seeded bugs)";
          Printf.sprintf "%d (%s ground truth)" d.rc_fixture_findings
            (if d.rc_fixture_match then "matches" else "DIVERGES from") ];
        [ "injected certificate bugs caught";
          Printf.sprintf "%d/%d" d.rc_caught d.rc_injected ];
        [ "runtime conc ops (workload)";
          Sva_rt.Stats.conc_to_string d.rc_conc ];
      ]
  in
  let table =
    T.render
      ~title:
        "Concurrency-safety pass: interprocedural lockset + \
         interrupt-atomicity race detector"
      ~note:
        "The shipped kernel must audit clean (every findings row 0) and \
         every discharged atomicity obligation carries a certificate the \
         trusted checker (Sva_tyck.Atomcert) re-verified; the analysis \
         itself stays outside the TCB.  The fixture row covers the \
         seeded-bug positives and the injection row shows the checker \
         rejects every corrupted certificate bundle."
      [ T.L; T.R ]
      [ "Metric"; "Count" ]
      rows
  in
  let failures =
    List.concat
      [
        List.filter_map
          (fun (c, n) ->
            if n = 0 then None
            else Some (Printf.sprintf "clean kernel has %d %s findings" n c))
          d.rc_counts;
        (if d.rc_cert_errors = 0 then []
         else
           [ Printf.sprintf "trusted checker rejected %d certificates"
               d.rc_cert_errors ]);
        (if d.rc_certs > 0 then []
         else [ "no access was certified on the clean kernel" ]);
        (if d.rc_fixture_match then []
         else [ "fixture findings diverge from the seeded ground truth" ]);
        (if d.rc_caught = d.rc_injected && d.rc_injected > 0 then []
         else
           [ Printf.sprintf "injection experiment caught %d/%d bugs"
               d.rc_caught d.rc_injected ]);
        (if d.rc_conc.Sva_rt.Stats.lock_acquires > 0 then []
         else [ "workload executed no sva_lock_acquire" ]);
        (if
           d.rc_conc.Sva_rt.Stats.lock_acquires
           = d.rc_conc.Sva_rt.Stats.lock_releases
           && d.rc_conc.Sva_rt.Stats.cli_count
              = d.rc_conc.Sva_rt.Stats.sti_count
         then []
         else [ "workload conc ops are unbalanced" ]);
      ]
  in
  match failures with
  | [] -> table ^ "  race check: PASS\n"
  | fs ->
      let msg = String.concat "; " fs in
      if strict then failwith ("race check FAILED: " ^ msg)
      else table ^ "  race check: FAIL - " ^ msg ^ "\n"

(* ---------- pool-safety certification (poolcert) ---------- *)

module Poolev = Sva_safety.Poolev
module Poolcert = Sva_tyck.Poolcert

type poolcert_data = {
  pc_th : int;  (** TH certificates, shipped kernel *)
  pc_comp : int;  (** completeness certificates (one per pool) *)
  pc_complete : int;  (** pools certified complete *)
  pc_dv : int;  (** devirtualization certificates *)
  pc_el_th : int;  (** lscheck elisions on TH pools *)
  pc_el_reduced : int;  (** lscheck reductions on incomplete pools *)
  pc_el_func : int;  (** funccheck elisions *)
  pc_cert_errors : int;  (** trusted-checker rejections, clean kernel *)
  pc_summary_match : bool;  (** Checkinsert summary identical on vs off *)
  pc_boot_cycles_off : int;
  pc_boot_cycles_on : int;
  pc_cycles_off : int;  (** workload cycles, certification off *)
  pc_cycles_on : int;
  pc_checks_match : bool;  (** full check snapshot identical on vs off *)
  pc_checks : int;  (** workload checks (either build; they match) *)
  pc_injected : int;  (** certificate-bug injection experiment *)
  pc_caught : int;
}

let pc_cache : poolcert_data option ref = ref None

(* The pipeline gate already failed the build if the trusted checker
   rejected anything, so a cached certified image implies acceptance;
   the explicit re-check below records the error count for the report. *)
let poolcert_data () =
  match !pc_cache with
  | Some d -> d
  | None ->
      let v = Kbuild.as_tested in
      let off = Kbuild.build ~conf:Pipeline.Sva_safe v in
      let on = Kbuild.build ~conf:Pipeline.Sva_safe ~poolcert:true v in
      let b = Option.get on.Pipeline.bl_poolcert in
      let clean_errs =
        Poolcert.check ~config:(Kbuild.aconfig v) on.Pipeline.bl_mod b
      in
      let el_th, el_red, el_fn =
        List.fold_left
          (fun (t, r, f) -> function
            | Poolev.El_th _ -> (t + 1, r, f)
            | Poolev.El_reduced _ -> (t, r + 1, f)
            | Poolev.El_func _ -> (t, r, f + 1))
          (0, 0, 0) b.Poolev.pb_elisions
      in
      (* Bit-identity: boot each image and run the identical workload;
         certification must not move a single cycle or check. *)
      let measure built =
        let t = Boot.boot_built built ~variant:v in
        let boot_cycles = Boot.cycles t in
        let ctx = Workloads.prepare t in
        Boot.reset_cycles t;
        Sva_rt.Stats.reset ();
        ablation_workload ctx;
        (boot_cycles, Boot.cycles t, Sva_rt.Stats.read ())
      in
      let boot_off, cyc_off, s_off = measure off in
      let boot_on, cyc_on, s_on = measure on in
      let results =
        Sva_tyck.Inject.pool_experiment ~config:(Kbuild.aconfig v)
          on.Pipeline.bl_mod b ~instances:3
      in
      let caught = List.length (List.filter (fun (_, _, c) -> c) results) in
      let d =
        {
          pc_th = List.length b.Poolev.pb_th;
          pc_comp = List.length b.Poolev.pb_comp;
          pc_complete =
            List.length
              (List.filter (fun c -> c.Poolev.cc_complete) b.Poolev.pb_comp);
          pc_dv = List.length b.Poolev.pb_dv;
          pc_el_th = el_th;
          pc_el_reduced = el_red;
          pc_el_func = el_fn;
          pc_cert_errors = List.length clean_errs;
          pc_summary_match =
            Option.get off.Pipeline.bl_summary
            = Option.get on.Pipeline.bl_summary;
          pc_boot_cycles_off = boot_off;
          pc_boot_cycles_on = boot_on;
          pc_cycles_off = cyc_off;
          pc_cycles_on = cyc_on;
          pc_checks_match = s_off = s_on;
          pc_checks = Sva_rt.Stats.total_checks s_on;
          pc_injected = List.length results;
          pc_caught = caught;
        }
      in
      pc_cache := Some d;
      d

let poolcert_table ?(strict = false) () =
  let d = poolcert_data () in
  let rows =
    [
      [ "TH certificates (type-homogeneous pools)"; string_of_int d.pc_th ];
      [ "completeness certificates (one per pool)"; string_of_int d.pc_comp ];
      [ "pools certified complete"; string_of_int d.pc_complete ];
      [ "devirtualization certificates"; string_of_int d.pc_dv ];
      [ "lscheck elisions on TH pools"; string_of_int d.pc_el_th ];
      [ "lscheck reductions on incomplete pools";
        string_of_int d.pc_el_reduced ];
      [ "funccheck elisions"; string_of_int d.pc_el_func ];
      [ "certificate errors (clean kernel)"; string_of_int d.pc_cert_errors ];
      [ "instrumentation summary on vs off";
        (if d.pc_summary_match then "identical" else "DIVERGES") ];
      [ "boot cycles off / on";
        Printf.sprintf "%d / %d" d.pc_boot_cycles_off d.pc_boot_cycles_on ];
      [ "workload cycles off / on";
        Printf.sprintf "%d / %d" d.pc_cycles_off d.pc_cycles_on ];
      [ "workload check counters on vs off";
        (if d.pc_checks_match then
           Printf.sprintf "identical (%d checks)" d.pc_checks
         else "DIVERGE") ];
      [ "injected certificate bugs caught";
        Printf.sprintf "%d/%d" d.pc_caught d.pc_injected ];
    ]
  in
  let table =
    T.render
      ~title:
        "Pool-safety certification: points-to evidence re-verified by the \
         trusted checker"
      ~note:
        "Every check elision taken on the points-to analysis's word - \
         lschecks skipped on type-homogeneous pools, reduced checks on \
         incomplete pools, devirtualized funcchecks - is backed by a \
         certificate Sva_tyck.Poolcert re-verified against an independent \
         scan of the instrumented kernel, so Pointsto and Devirt stay \
         outside the TCB (Section 5).  Certification is pure observation: \
         boot/workload cycles and every check counter must be \
         bit-identical with it on or off."
      [ T.L; T.R ]
      [ "Metric"; "Count" ]
      rows
  in
  let failures =
    List.concat
      [
        (if d.pc_cert_errors = 0 then []
         else
           [ Printf.sprintf "trusted checker rejected %d-error bundle"
               d.pc_cert_errors ]);
        (if d.pc_th > 0 then [] else [ "no pool was certified TH" ]);
        (if d.pc_el_th + d.pc_el_reduced + d.pc_el_func > 0 then []
         else [ "no elision was recorded" ]);
        (if d.pc_summary_match then []
         else [ "instrumentation summary diverges with certification on" ]);
        (if d.pc_boot_cycles_off = d.pc_boot_cycles_on then []
         else [ "boot cycles diverge with certification on" ]);
        (if d.pc_cycles_off = d.pc_cycles_on then []
         else [ "workload cycles diverge with certification on" ]);
        (if d.pc_checks_match then []
         else [ "check counters diverge with certification on" ]);
        (if d.pc_caught = d.pc_injected && d.pc_injected > 0 then []
         else
           [ Printf.sprintf "injection experiment caught %d/%d bugs"
               d.pc_caught d.pc_injected ]);
      ]
  in
  match failures with
  | [] -> table ^ "  poolcert check: PASS\n"
  | fs ->
      let msg = String.concat "; " fs in
      if strict then failwith ("poolcert check FAILED: " ^ msg)
      else table ^ "  poolcert check: FAIL - " ^ msg ^ "\n"

(* ---------- machine-readable results (--json) ---------- *)

module J = Jsonout

let fastpath_json ?(quick = false) () =
  let d = fastpath_data ~quick () in
  J.Obj
    [
      ("splay-comparisons-per-op",
       J.Obj [ ("cache-off", J.Float d.fp_cmp_off);
               ("cache-on", J.Float d.fp_cmp_on) ]);
      ("cycles-per-op",
       J.Obj [ ("cache-off", J.Float d.fp_cycles_off);
               ("cache-on", J.Float d.fp_cycles_on) ]);
      ("checks-per-op",
       J.Obj [ ("cache-off", J.Int d.fp_checks_off);
               ("cache-on", J.Int d.fp_checks_on) ]);
      ("hit-rate-pct", J.Float d.fp_hit_rate);
      ("comparison-reduction", J.Float d.fp_reduction);
    ]

let smp_json ?(quick = false) () =
  let d = smp_data ~quick () in
  J.Obj
    [
      ("seed", J.Int d.sd_seed);
      ("jobs", J.Int d.sd_jobs);
      ("sequential",
       J.Obj [ ("cycles", J.Int d.sd_seq_cycles);
               ("checks", J.Int d.sd_seq_checks) ]);
      ("points",
       J.List
         (List.map
            (fun p ->
              J.Obj
                [
                  ("cpus", J.Int p.sp_cpus);
                  ("makespan-cycles", J.Int p.sp_makespan);
                  ("total-cycles", J.Int p.sp_total);
                  ("speedup", J.Float p.sp_speedup);
                  ("steals", J.Int p.sp_steals);
                  ("ipis-sent", J.Int p.sp_ipis_sent);
                  ("ipis-delivered", J.Int p.sp_ipis_delivered);
                  ("checks", J.Int p.sp_checks);
                ])
            d.sd_points));
      ("single-cpu-identical", J.Bool d.sd_seq_identical);
      ("rerun-identical", J.Bool d.sd_rerun_identical);
    ]

let table7_json ?(quick = false) () =
  J.List
    (List.map
       (fun r ->
         J.Obj
           [
             ("operation", J.Str r.t7_op);
             ("native-cycles", J.Float r.t7_native_cycles);
             ("overheads-pct",
              J.Obj
                (List.map
                   (fun (conf, measured, paper) ->
                     (conf,
                      J.Obj [ ("measured", J.Float measured);
                              ("paper", J.Float paper) ]))
                   r.t7_overheads));
           ])
       (table7_data ~quick ()))

let tiered_json ?(quick = false) () =
  let d = tiered_data ~quick () in
  J.Obj
    [
      ("cycles-per-op",
       J.Obj [ ("interp", J.Float d.td_cycles_interp);
               ("tiered", J.Float d.td_cycles_tiered) ]);
      ("steps-per-op",
       J.Obj [ ("interp", J.Float d.td_steps_interp);
               ("tiered", J.Float d.td_steps_tiered) ]);
      ("checks-per-op",
       J.Obj [ ("interp", J.Int d.td_checks_interp);
               ("tiered", J.Int d.td_checks_tiered) ]);
      ("host-ns-per-op",
       J.Obj [ ("interp", J.Float d.td_ns_interp);
               ("tiered", J.Float d.td_ns_tiered) ]);
      ("host-speedup", J.Float d.td_speedup);
      ("promotions", J.Int d.td_promotions);
      ("translation-cache",
       J.Obj [ ("hits", J.Int d.td_tcache_hits);
               ("misses", J.Int d.td_tcache_misses);
               ("signature-verifications", J.Int d.td_sig_verifications);
               ("disk-hits", J.Int d.td_disk_hits);
               ("disk-stale", J.Int d.td_disk_stale);
               ("disk-writes", J.Int d.td_disk_writes) ]);
      ("superblocks", J.Int d.td_superblocks);
    ]

let aot_json ?(quick = false) () =
  let d = aot_data ~quick () in
  let td = tiered_data ~quick () in
  J.Obj
    [
      ("cycles-per-op",
       J.Obj [ ("interp", J.Float td.td_cycles_interp);
               ("tiered", J.Float td.td_cycles_tiered);
               ("aot", J.Float d.ad_cycles_aot) ]);
      ("steps-per-op",
       J.Obj [ ("interp", J.Float td.td_steps_interp);
               ("tiered", J.Float td.td_steps_tiered);
               ("aot", J.Float d.ad_steps_aot) ]);
      ("checks-per-op",
       J.Obj [ ("interp", J.Int td.td_checks_interp);
               ("tiered", J.Int td.td_checks_tiered);
               ("aot", J.Int d.ad_checks_aot) ]);
      ("host-ns-per-op",
       J.Obj [ ("interp", J.Float td.td_ns_interp);
               ("tiered", J.Float td.td_ns_tiered);
               ("aot", J.Float d.ad_ns_aot) ]);
      ("host-speedup", J.Float d.ad_speedup);
      ("boot-ns",
       J.Obj [ ("cold", J.Float d.ad_boot_cold_ns);
               ("warm", J.Float d.ad_boot_warm_ns) ]);
      ("functions-compiled", J.Int d.ad_promotions);
      ("disk-cache",
       J.Obj [ ("writes-cold", J.Int d.ad_disk_writes_cold);
               ("hits-warm", J.Int d.ad_disk_hits_warm);
               ("stale-warm", J.Int d.ad_disk_stale_warm);
               ("misses-warm", J.Int d.ad_misses_warm) ]);
      ("superblocks", J.Int d.ad_superblocks);
    ]

let ranges_json () =
  let d = ranges_data () in
  J.Obj
    [
      ("ls-checks",
       J.Obj
         [
           ("ranges-off", J.Int d.rd_ls_off);
           ("ranges-on", J.Int d.rd_ls_on);
           ("range-geps", J.Int d.rd_ls_range_geps);
         ]);
      ("bounds-checks",
       J.Obj
         [
           ("ranges-off", J.Int d.rd_bounds_off);
           ("ranges-on", J.Int d.rd_bounds_on);
           ("cert-elided", J.Int d.rd_bounds_cert);
         ]);
      ("certificates",
       J.Obj
         [
           ("bounds", J.Int d.rd_certs_bounds);
           ("lscheck", J.Int d.rd_certs_ls);
           ("verified", J.Bool true);
         ]);
      ("facts", J.Int d.rd_facts);
      ("iterations", J.Int d.rd_iterations);
    ]

let trace_json ?(quick = false) () =
  let d = trace_data ~quick () in
  let prow_json (r : Sva_rt.Trace.prow) =
    J.Obj
      [
        ("name", J.Str r.Sva_rt.Trace.p_name);
        ("calls", J.Int r.Sva_rt.Trace.p_calls);
        ("self-cycles", J.Int r.Sva_rt.Trace.p_self_cycles);
        ("total-cycles", J.Int r.Sva_rt.Trace.p_total_cycles);
        ("self-checks", J.Int r.Sva_rt.Trace.p_self_checks);
      ]
  in
  let pool_json (m : Sva_rt.Metapool_rt.metrics) =
    J.Obj
      [
        ("name", J.Str m.Sva_rt.Metapool_rt.m_name);
        ("live", J.Int m.Sva_rt.Metapool_rt.m_live);
        ("peak", J.Int m.Sva_rt.Metapool_rt.m_peak);
        ("regs", J.Int m.Sva_rt.Metapool_rt.m_regs);
        ("drops", J.Int m.Sva_rt.Metapool_rt.m_drops);
        ("depth", J.Int m.Sva_rt.Metapool_rt.m_depth);
        ("lookups", J.Int m.Sva_rt.Metapool_rt.m_lookups);
        ("cache-hits", J.Int m.Sva_rt.Metapool_rt.m_cache_hits);
      ]
  in
  J.Obj
    [
      ("invariance",
       J.Obj
         [
           ("cycles",
            J.Obj [ ("obs-off", J.Int d.tr_cycles_off);
                    ("obs-on", J.Int d.tr_cycles_on) ]);
           ("checks",
            J.Obj [ ("obs-off", J.Int d.tr_checks_off);
                    ("obs-on", J.Int d.tr_checks_on) ]);
         ]);
      ("events",
       J.Obj
         [
           ("emitted", J.Int d.tr_emitted);
           ("retained", J.Int d.tr_retained);
           ("dropped", J.Int d.tr_dropped);
           ("by-kind", J.Obj (List.map (fun (k, n) -> (k, J.Int n)) d.tr_counts));
         ]);
      ("attribution-pct", J.Float d.tr_attr_pct);
      ("hot-syscalls", J.List (List.map prow_json d.tr_sys_rows));
      ("hot-functions", J.List (List.map prow_json d.tr_fn_rows));
      ("pools", J.List (List.map pool_json d.tr_pools));
      ("chrome", d.tr_chrome);
    ]

let lint_json () =
  let d = lint_data () in
  J.Obj
    [
      ("findings",
       J.Obj (List.map (fun (c, n) -> (c, J.Int n)) d.ld_counts));
      ("findings-total", J.Int d.ld_findings);
      ("accesses-proved-safe", J.Int d.ld_proofs);
      ("functions-analyzed", J.Int d.ld_funcs);
      ("dataflow-iterations", J.Int d.ld_iterations);
      ("ls-checks",
       J.Obj
         [
           ("lint-off", J.Int d.ld_ls_inserted_base);
           ("lint-on", J.Int d.ld_ls_inserted_lint);
           ("proved-static", J.Int d.ld_ls_proved_static);
         ]);
    ]

let race_json () =
  let d = race_data () in
  J.Obj
    [
      ("findings",
       J.Obj (List.map (fun (c, n) -> (c, J.Int n)) d.rc_counts));
      ("shared-classes", J.Int d.rc_shared);
      ("accesses", J.Int d.rc_accesses);
      ("certificates",
       J.Obj
         [
           ("access", J.Int d.rc_certs);
           ("fact-claims", J.Int d.rc_fact_claims);
           ("errors", J.Int d.rc_cert_errors);
           ("verified", J.Bool (d.rc_cert_errors = 0));
         ]);
      ("lock-order-edges", J.Int d.rc_lock_edges);
      ("functions-analyzed", J.Int d.rc_funcs);
      ("dataflow-iterations", J.Int d.rc_iterations);
      ("fixture",
       J.Obj
         [
           ("findings", J.Int d.rc_fixture_findings);
           ("exact-match", J.Bool d.rc_fixture_match);
         ]);
      ("injection",
       J.Obj
         [
           ("injected", J.Int d.rc_injected);
           ("caught", J.Int d.rc_caught);
         ]);
      ("conc",
       J.Obj
         [
           ("cli", J.Int d.rc_conc.Sva_rt.Stats.cli_count);
           ("sti", J.Int d.rc_conc.Sva_rt.Stats.sti_count);
           ("lock-acquires", J.Int d.rc_conc.Sva_rt.Stats.lock_acquires);
           ("lock-releases", J.Int d.rc_conc.Sva_rt.Stats.lock_releases);
         ]);
    ]

let poolcert_json () =
  let d = poolcert_data () in
  J.Obj
    [
      ("certificates",
       J.Obj
         [
           ("th", J.Int d.pc_th);
           ("completeness", J.Int d.pc_comp);
           ("complete-pools", J.Int d.pc_complete);
           ("devirt", J.Int d.pc_dv);
           ("errors", J.Int d.pc_cert_errors);
           ("verified", J.Bool (d.pc_cert_errors = 0));
         ]);
      ("elisions",
       J.Obj
         [
           ("th", J.Int d.pc_el_th);
           ("reduced", J.Int d.pc_el_reduced);
           ("funccheck", J.Int d.pc_el_func);
         ]);
      ("bit-identity",
       J.Obj
         [
           ("summary-match", J.Bool d.pc_summary_match);
           ("boot-cycles",
            J.Obj [ ("off", J.Int d.pc_boot_cycles_off);
                    ("on", J.Int d.pc_boot_cycles_on) ]);
           ("workload-cycles",
            J.Obj [ ("off", J.Int d.pc_cycles_off);
                    ("on", J.Int d.pc_cycles_on) ]);
           ("checks-match", J.Bool d.pc_checks_match);
           ("workload-checks", J.Int d.pc_checks);
         ]);
      ("injection",
       J.Obj
         [
           ("injected", J.Int d.pc_injected);
           ("caught", J.Int d.pc_caught);
         ]);
    ]
