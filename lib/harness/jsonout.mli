(** Minimal JSON support for the benchmark harness: an emitter for the
    [--json] machine-readable results file and a recursive-descent parser
    used by the regression tests to consume it back.  Self-contained so
    the harness adds no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val emit : ?indent:int -> t -> string
(** Render as JSON text.  Strings are escaped per RFC 8259; non-finite
    floats become [null] (JSON has no representation for them).  The
    result ends with a newline. *)

exception Parse_error of string
(** Raised by {!parse} with a message and character offset. *)

val parse : string -> t
(** Parse one JSON document.  Numbers without ['.'], ['e'] or ['E'] decode
    as {!Int}; everything else as {!Float}.  Trailing garbage after the
    document is an error. *)

val member : string -> t -> t option
(** Field lookup on an {!Obj}; [None] for other constructors. *)

val to_int : t -> int
(** {!Int} payload (or an integral {!Float}).  @raise Parse_error otherwise. *)

val to_float : t -> float
(** Numeric payload.  @raise Parse_error otherwise. *)

val to_string : t -> string
(** {!Str} payload.  @raise Parse_error otherwise. *)

val to_list : t -> t list
(** {!List} payload.  @raise Parse_error otherwise. *)
