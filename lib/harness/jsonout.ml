(* Minimal JSON emitter + parser (see jsonout.mli).  The emitter favours
   stable, diffable output: two spaces per level, object fields in the
   order given, a trailing newline. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- emitter ---------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* "%.6g" may yield "5" for 5.0 — still valid JSON (an int); the
       parser classifies by lexical shape, so keep it as-is. *)
    Printf.sprintf "%.6g" f

let emit ?(indent = 2) v =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make (n * indent) ' ') in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (depth + 1);
            go (depth + 1) item)
          items;
        Buffer.add_char buf '\n';
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (depth + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            go (depth + 1) item)
          fields;
        Buffer.add_char buf '\n';
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---------- parser ---------- *)

exception Parse_error of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
    then (
      pos := !pos + String.length word;
      v)
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub text !pos 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* UTF-8 encode the code point (BMP only, which covers
                 everything the emitter produces). *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then (
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
              else (
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))));
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail ("bad number " ^ s)
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt s with
          | Some f -> Float f
          | None -> fail ("bad number " ^ s))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---------- accessors ---------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function
  | Int i -> i
  | Float f when Float.is_integer f -> int_of_float f
  | _ -> raise (Parse_error "expected an integer")

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | _ -> raise (Parse_error "expected a number")

let to_string = function
  | Str s -> s
  | _ -> raise (Parse_error "expected a string")

let to_list = function
  | List l -> l
  | _ -> raise (Parse_error "expected a list")
