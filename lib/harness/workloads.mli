(** HBench-OS-style kernel operation drivers (Section 7.1.2).

    Each operation performs one iteration of the corresponding
    microbenchmark against a booted kernel: the latency set of Table 7
    (getpid ... fork/exec) and the bandwidth set of Table 8 (file read
    and pipe at 32k/64k/128k).  Setup work (scratch files, pipes, file
    content) happens once in {!prepare}. *)

type ctx

val prepare : Ukern.Boot.t -> ctx
(** Create the scratch file, the benchmark pipe, the 128KB data file and
    the tiny exec image the operations use. *)

val kernel : ctx -> Ukern.Boot.t

(** {2 Table 7 latency operations — one call = one benchmarked op} *)

val op_getpid : ctx -> unit
val op_getrusage : ctx -> unit
val op_gettimeofday : ctx -> unit
val op_open_close : ctx -> unit
val op_sbrk : ctx -> unit
val op_sigaction : ctx -> unit
val op_write : ctx -> unit
val op_pipe_latency : ctx -> unit
(** One-byte round trip through a pipe. *)

val op_fork : ctx -> unit
val op_fork_exec : ctx -> unit

val latency_ops : (string * float array * (ctx -> unit) * int) list
(** [(name, paper overheads [|gcc; llvm; safe|] %, op, reps-per-batch)] —
    the Table 7 rows with the paper's reference numbers. *)

(** {2 Table 8 bandwidth operations} *)

val op_file_read : ctx -> int -> unit
(** Read the given number of bytes from the data file (chunked). *)

val op_pipe_stream : ctx -> int -> unit
(** Stream the given number of bytes through the pipe. *)

val bandwidth_ops : (string * float array * (ctx -> unit) * int * int) list
(** [(name, paper reductions, op, bytes-per-op, reps)] — Table 8 rows. *)

(** {2 Simulated-SMP parallel job mix} *)

val smp_jobs : ctx -> int -> (unit -> unit) list
(** [smp_jobs ctx n] — [n] identical jobs for {!Ukern.Boot.run_smp},
    each one pass over an embarrassingly parallel syscall mix (getpid,
    getrusage, gettimeofday, sbrk, sigaction, write, one-byte pipe round
    trip).  Constant per-job cost, so N-CPU makespan measures the
    scheduler's load balance rather than workload skew. *)

(** {2 Server and application models (Tables 5 and 6)} *)

val serve_http_request : ctx -> file:string -> cgi:bool -> int
(** One thttpd-style request: the host-side client sends a request frame;
    the "server process" polls, receives, reads the file and transmits
    the response.  Returns bytes served. *)

val http_setup : ctx -> unit
(** Create www files (311B and 85KB) and the server socket. *)

val op_scp_chunk : ctx -> unit
(** One scp-like unit: read 4KB from the data file and transmit it. *)

val drain_tx : ctx -> int
(** Discard transmitted frames, returning how many there were (keeps the
    simulated wire from growing). *)
