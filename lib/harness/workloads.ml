module Boot = Ukern.Boot

(* syscall numbers (ksrc_init.ml) *)
let sys_getpid = 1
let sys_getrusage = 2
let sys_gettimeofday = 3
let sys_open = 4
let sys_close = 5
let sys_read = 6
let sys_write = 7
let sys_pipe = 8
let sys_fork = 9
let sys_execve = 10
let sys_sbrk = 11
let sys_sigaction = 12
let sys_socket = 14
let sys_bind = 15
let sys_sendto = 16
let sys_recvfrom = 17
let sys_lseek = 20
let sys_netpoll = 22

(* user memory layout used by the host-side "applications" *)
let off_path = 0 (* 64 bytes of path scratch *)
let off_small = 512 (* small result structs *)
let off_req = 1024 (* request scratch *)
let off_buf = 65536 (* large I/O buffer (up to 128KB + slack) *)

type ctx = {
  t : Boot.t;
  mutable scratch_fd : int64;
  mutable data_fd : int64;
  mutable pipe_rfd : int64;
  mutable pipe_wfd : int64;
  mutable http_sd : int64;
  mutable exec_budget : int;
}

let kernel c = c.t

let sc c num args =
  let r = Boot.syscall c.t num args in
  r

let check name r =
  if Int64.compare r 0L < 0 then
    failwith (Printf.sprintf "workload setup: %s failed (%Ld)" name r)

let uaddr c off = Boot.user_addr c.t off

let open_file c name =
  Boot.write_user c.t off_path (name ^ "\000");
  sc c sys_open [ uaddr c off_path; 1L ]

(* Write [data] to an open fd at the current position, 2KB per syscall. *)
let write_all c fd data =
  let len = String.length data in
  let pos = ref 0 in
  while !pos < len do
    let chunk = min 2048 (len - !pos) in
    Boot.write_user c.t off_buf (String.sub data !pos chunk);
    let w = sc c sys_write [ fd; uaddr c off_buf; Int64.of_int chunk ] in
    check "write" w;
    pos := !pos + chunk
  done

let data_file_bytes = 128 * 1024

let exec_image =
  (* UKEX header: magic, entry_vpn = 8, npages = 1, dump_len = 0 *)
  let b = Bytes.create 16 in
  Bytes.set_int32_le b 0 0x554b4558l;
  Bytes.set_int32_le b 4 8l;
  Bytes.set_int32_le b 8 1l;
  Bytes.set_int32_le b 12 0l;
  Bytes.to_string b ^ String.make 256 '\x90'

let prepare t =
  let c =
    {
      t;
      scratch_fd = -1L;
      data_fd = -1L;
      pipe_rfd = -1L;
      pipe_wfd = -1L;
      http_sd = -1L;
      exec_budget = 4000;
    }
  in
  (* scratch file for the write benchmark *)
  c.scratch_fd <- open_file c "bench.scratch";
  check "open scratch" c.scratch_fd;
  (* 128KB data file for read bandwidth *)
  c.data_fd <- open_file c "bench.data";
  check "open data" c.data_fd;
  let pattern =
    String.init data_file_bytes (fun i -> Char.chr (0x20 + (i mod 64)))
  in
  write_all c c.data_fd pattern;
  (* the benchmark pipe *)
  let r = sc c sys_pipe [ uaddr c off_small ] in
  check "pipe" r;
  let fds = Boot.read_user t off_small 8 in
  c.pipe_rfd <- Int64.of_int (Char.code fds.[0]);
  c.pipe_wfd <- Int64.of_int (Char.code fds.[4]);
  (* the exec image *)
  let img_fd = open_file c "binimg" in
  check "open binimg" img_fd;
  write_all c img_fd exec_image;
  check "close binimg" (sc c sys_close [ img_fd ]);
  c

(* ---------- Table 7 latency ops ---------- *)

let op_getpid c = ignore (sc c sys_getpid [])

let op_getrusage c = ignore (sc c sys_getrusage [ uaddr c off_small ])

let op_gettimeofday c = ignore (sc c sys_gettimeofday [ uaddr c off_small ])

let op_open_close c =
  let fd = open_file c "bench.scratch" in
  ignore (sc c sys_close [ fd ])

let op_sbrk c = ignore (sc c sys_sbrk [ 0L ])

let op_sigaction c = ignore (sc c sys_sigaction [ 5L; 0x1234L ])

let op_write c =
  ignore (sc c sys_lseek [ c.scratch_fd; 0L; 0L ]);
  ignore (sc c sys_write [ c.scratch_fd; uaddr c off_small; 1L ])

let op_pipe_latency c =
  ignore (sc c sys_write [ c.pipe_wfd; uaddr c off_small; 1L ]);
  ignore (sc c sys_read [ c.pipe_rfd; uaddr c off_small; 1L ])

let op_fork c = ignore (sc c sys_fork [])

let op_fork_exec c =
  if c.exec_budget <= 0 then ()
  else begin
    c.exec_budget <- c.exec_budget - 1;
    ignore (sc c sys_fork []);
    Boot.write_user c.t off_path "binimg\000";
    ignore (sc c sys_execve [ uaddr c off_path ])
  end

(* Paper Table 7 reference overheads: [| SVA gcc; SVA llvm; SVA Safe |]. *)
let latency_ops =
  [
    ("getpid", [| 21.1; 21.1; 28.9 |], op_getpid, 400);
    ("getrusage", [| 39.7; 27.0; 42.9 |], op_getrusage, 300);
    ("gettimeofday", [| 47.5; 52.5; 55.7 |], op_gettimeofday, 300);
    ("open/close", [| 14.8; 27.3; 386.0 |], op_open_close, 150);
    ("sbrk", [| 20.8; 26.4; 26.4 |], op_sbrk, 400);
    ("sigaction", [| 14.0; 14.0; 123.0 |], op_sigaction, 400);
    ("write", [| 39.4; 38.0; 54.9 |], op_write, 200);
    ("pipe", [| 62.8; 62.2; 280.0 |], op_pipe_latency, 150);
    ("fork", [| 24.9; 23.3; 74.5 |], op_fork, 60);
    ("fork/exec", [| 17.7; 20.6; 54.2 |], op_fork_exec, 40);
  ]

(* ---------- Table 8 bandwidth ops ---------- *)

let op_file_read c bytes =
  ignore (sc c sys_lseek [ c.data_fd; 0L; 0L ]);
  let left = ref bytes in
  while !left > 0 do
    let n = min 8192 !left in
    let r = sc c sys_read [ c.data_fd; uaddr c off_buf; Int64.of_int n ] in
    if Int64.compare r 0L <= 0 then failwith "file read stalled";
    left := !left - Int64.to_int r
  done

let op_pipe_stream c bytes =
  let left = ref bytes in
  while !left > 0 do
    let n = min 2048 !left in
    let w = sc c sys_write [ c.pipe_wfd; uaddr c off_buf; Int64.of_int n ] in
    ignore (sc c sys_read [ c.pipe_rfd; uaddr c (off_buf + 8192); Int64.of_int n ]);
    if Int64.compare w 0L <= 0 then failwith "pipe stalled";
    left := !left - Int64.to_int w
  done

let bandwidth_ops =
  [
    ("file read (32k)", [| 0.80; 1.07; 1.01 |], (fun c -> op_file_read c 32768), 32768, 8);
    ("file read (64k)", [| 0.69; 0.99; 0.80 |], (fun c -> op_file_read c 65536), 65536, 6);
    ("file read (128k)", [| 5.15; 6.10; 8.36 |], (fun c -> op_file_read c 131072), 131072, 4);
    ("pipe (32k)", [| 29.4; 31.2; 66.4 |], (fun c -> op_pipe_stream c 32768), 32768, 6);
    ("pipe (64k)", [| 29.1; 31.0; 66.5 |], (fun c -> op_pipe_stream c 65536), 65536, 5);
    ("pipe (128k)", [| 12.5; 17.4; 51.4 |], (fun c -> op_pipe_stream c 131072), 131072, 4);
  ]

(* ---------- simulated-SMP parallel job mix ---------- *)

(* One job = one pass over an embarrassingly parallel syscall mix.  Every
   job performs exactly the same work, so per-job modeled cost is
   constant and the scheduler's makespan is governed by load balance
   alone — the scaling gate then measures the scheduler, not workload
   skew.  fork/exec and open/close are excluded: they mutate kernel
   tables and would give later jobs different costs. *)
let smp_job_mix c =
  op_getpid c;
  op_getrusage c;
  op_gettimeofday c;
  op_sbrk c;
  op_sigaction c;
  op_write c;
  op_pipe_latency c

let smp_jobs c n = List.init n (fun _ () -> smp_job_mix c)

(* ---------- thttpd-style server ---------- *)

let http_port = 80

let http_setup c =
  (* www files *)
  let small_fd = open_file c "www.311" in
  check "open www.311" small_fd;
  write_all c small_fd (String.make 311 'a');
  check "close" (sc c sys_close [ small_fd ]);
  let big_fd = open_file c "www.85k" in
  check "open www.85k" big_fd;
  write_all c big_fd (String.make (85 * 1024) 'b');
  check "close" (sc c sys_close [ big_fd ]);
  (* the server socket *)
  c.http_sd <- sc c sys_socket [ 17L ];
  check "socket" c.http_sd;
  check "bind" (sc c sys_bind [ c.http_sd; Int64.of_int http_port ])

let drain_tx c = List.length (Boot.sent_frames c.t)

(* One request: client frame -> netpoll -> recvfrom -> open/read file ->
   sendto chunks -> close. *)
let serve_http_request c ~file ~cgi =
  (* client side: [port:4][request] *)
  let req = Bytes.create 4 in
  Bytes.set_int32_le req 0 (Int32.of_int http_port);
  Boot.inject_frame c.t ~proto:17 (Bytes.to_string req ^ "GET " ^ file);
  ignore (sc c sys_netpoll []);
  let r = sc c sys_recvfrom [ c.http_sd; uaddr c off_req; 256L ] in
  if Int64.compare r 0L < 0 then failwith "recvfrom failed";
  let reqs = Boot.read_user c.t off_req (Int64.to_int r) in
  let fname =
    match String.index_opt reqs ' ' with
    | Some i -> String.sub reqs (i + 1) (String.length reqs - i - 1)
    | None -> failwith "bad request"
  in
  (* cgi: the handler forks a worker (paper's cgi test) *)
  if cgi then ignore (sc c sys_fork []);
  let fd = open_file c fname in
  if Int64.compare fd 0L < 0 then failwith ("404 " ^ fname);
  let served = ref 0 in
  let rec pump () =
    let r = sc c sys_read [ fd; uaddr c off_buf; 4096L ] in
    let n = Int64.to_int r in
    if n > 0 then begin
      (* transmit in MTU-sized datagrams *)
      let sent = ref 0 in
      while !sent < n do
        let chunk = min 1400 (n - !sent) in
        ignore
          (sc c sys_sendto
             [ c.http_sd; uaddr c (off_buf + !sent); Int64.of_int chunk; 9999L ]);
        sent := !sent + chunk
      done;
      served := !served + n;
      pump ()
    end
  in
  pump ();
  ignore (sc c sys_close [ fd ]);
  ignore (drain_tx c);
  !served

let op_scp_chunk c =
  let r = sc c sys_read [ c.data_fd; uaddr c off_buf; 4096L ] in
  let n = Int64.to_int r in
  if n <= 0 then ignore (sc c sys_lseek [ c.data_fd; 0L; 0L ])
  else begin
    let sent = ref 0 in
    while !sent < n do
      let chunk = min 1400 (n - !sent) in
      ignore
        (sc c sys_sendto
           [ c.http_sd; uaddr c (off_buf + !sent); Int64.of_int chunk; 2222L ]);
      sent := !sent + chunk
    done;
    ignore (drain_tx c)
  end
