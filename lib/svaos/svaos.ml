open Sva_hw

type mode = Native_inline | Sva_mediated

type percpu = {
  pc_id : int;
  pc_cpu : Cpu.t;
  mutable pc_icontexts : int list;
  mutable pc_ipis : int list;  (* pending IPI vectors, oldest first *)
}

type t = {
  machine : Machine.t;
  cpu : Cpu.t;  (* alias of [cpus.(0).pc_cpu], kept for 1-CPU callers *)
  cpus : percpu array;
  smp : Sva_rt.Smp.t;
  mmu : Mmu.t;
  devices : Devices.t;
  mutable mode : mode;
  syscalls : (int, string) Hashtbl.t;
  interrupts : (int, string) Hashtbl.t;
  spaces : (int, Mmu.space) Hashtbl.t;
  mutable ops_count : int;
  locks : (int, int) Hashtbl.t;  (* lock address -> holder CPU *)
}

let create ?(mode = Sva_mediated) ?(ncpus = 1) () =
  if ncpus < 1 || ncpus > Machine.max_cpus then
    invalid_arg
      (Printf.sprintf "Svaos.create: ncpus %d out of range [1,%d]" ncpus
         Machine.max_cpus);
  let cpus =
    Array.init ncpus (fun i ->
        { pc_id = i; pc_cpu = Cpu.create (); pc_icontexts = []; pc_ipis = [] })
  in
  {
    machine = Machine.create ();
    cpu = cpus.(0).pc_cpu;
    cpus;
    smp = Sva_rt.Smp.create ~ncpus ();
    mmu = Mmu.create ();
    devices = Devices.create ();
    mode;
    syscalls = Hashtbl.create 64;
    interrupts = Hashtbl.create 16;
    spaces = Hashtbl.create 16;
    ops_count = 0;
    locks = Hashtbl.create 8;
  }

let set_mode t m = t.mode <- m

let op t = t.ops_count <- t.ops_count + 1

(* ---------- simulated SMP ----------

   The SVM interleaves the modeled CPUs on one host thread, so "the
   current CPU" is the one the scheduler last selected.  Switching also
   redirects the per-CPU stats banks and the trace's CPU tag, so every
   dynamic counter and event lands on the executing CPU. *)

let smpctx t = t.smp
let ncpus t = Array.length t.cpus
let current_cpu t = Sva_rt.Smp.cur t.smp
let curpc t = t.cpus.(Sva_rt.Smp.cur t.smp)
let curcpu t = (curpc t).pc_cpu
let cpu_state t ~cpu = t.cpus.(cpu).pc_cpu

let switch_cpu t i =
  Sva_rt.Smp.set_cur t.smp i;
  Sva_rt.Stats.set_cpu i;
  Sva_rt.Trace.set_cpu i

(* Inter-processor interrupts: Table 2's missing multiprocessor piece.
   Sending enqueues a vector on the target CPU; the vector is delivered
   (trapped on) the next time the scheduler runs that CPU with
   interrupts enabled.  Sending to yourself is allowed (the kernel's
   reschedule path does it). *)

let ipi_send t ~cpu ~vector =
  op t;
  if cpu < 0 || cpu >= Array.length t.cpus then
    failwith (Printf.sprintf "SVA-OS: IPI to nonexistent CPU %d" cpu);
  Sva_rt.Stats.bump_ipi_sent ();
  let pc = t.cpus.(cpu) in
  pc.pc_ipis <- pc.pc_ipis @ [ vector ]

let ipi_pending t = (curpc t).pc_ipis <> []

let take_ipi t =
  let pc = curpc t in
  match pc.pc_ipis with
  | [] -> None
  | v :: rest ->
      pc.pc_ipis <- rest;
      Sva_rt.Stats.bump_ipi_delivered ();
      Some v

let interrupts_enabled t = (curcpu t).Cpu.interrupts_enabled

(* In mediated mode, validate that a state buffer lies in kernel memory:
   the SVM refuses to spill processor state where userspace could reach
   it. *)
let validate_buffer t ~addr ~len =
  match t.mode with
  | Native_inline -> ()
  | Sva_mediated ->
      if not (Machine.in_kernel_range ~addr) || Machine.in_user_range ~addr ~len
      then failwith "SVA-OS: state buffer not in kernel memory";
      (* Touch the range to force a fault now rather than mid-save. *)
      ignore (Machine.read t.machine ~addr ~len:1);
      ignore (Machine.read t.machine ~addr:(addr + len - 1) ~len:1)

let save_integer t ~buffer =
  op t;
  validate_buffer t ~addr:buffer ~len:Cpu.integer_state_size;
  Machine.with_svm_mode t.machine (fun () ->
      Cpu.save_integer (curcpu t) t.machine ~addr:buffer)

let load_integer t ~buffer =
  op t;
  validate_buffer t ~addr:buffer ~len:Cpu.integer_state_size;
  Cpu.load_integer (curcpu t) t.machine ~addr:buffer

let save_fp t ~buffer ~always =
  op t;
  validate_buffer t ~addr:buffer ~len:Cpu.fp_state_size;
  Machine.with_svm_mode t.machine (fun () ->
      Cpu.save_fp (curcpu t) t.machine ~addr:buffer ~always)

let load_fp t ~buffer =
  op t;
  validate_buffer t ~addr:buffer ~len:Cpu.fp_state_size;
  Cpu.load_fp (curcpu t) t.machine ~addr:buffer

(* ---------- interrupt contexts ----------

   Layout of an interrupt context record:
     +0   : magic/integrity tag (mediated mode)
     +8   : flags (bit 0: was_privileged; bit 1: has pending ipush)
     +16  : pending function address
     +24  : pending argument
     +32  : saved integer state (Cpu.integer_state_size bytes)        *)

let icontext_size = 32 + Cpu.integer_state_size

let ic_magic = 0x53564149434F4EL (* "SVAICON" *)

let icontext_create t ~sp ~was_privileged =
  op t;
  let icp = sp in
  Machine.with_svm_mode t.machine (fun () ->
      (match t.mode with
      | Sva_mediated -> Machine.write_int t.machine ~addr:icp ~width:8 ic_magic
      | Native_inline -> Machine.write_int t.machine ~addr:icp ~width:8 0L);
      Machine.write_int t.machine ~addr:(icp + 8) ~width:8
        (if was_privileged then 1L else 0L);
      Machine.write_int t.machine ~addr:(icp + 16) ~width:8 0L;
      Machine.write_int t.machine ~addr:(icp + 24) ~width:8 0L;
      (* On entry the SVM saves only the subset of control state the kernel
         will clobber; in native mode this is a smaller spill.  We model
         the cost difference by the amount of state written. *)
      match t.mode with
      | Sva_mediated -> Cpu.save_integer (curcpu t) t.machine ~addr:(icp + 32)
      | Native_inline ->
          (* Native trap entry pushes a minimal frame. *)
          for i = 0 to 5 do
            Machine.write_int t.machine ~addr:(icp + 32 + (i * 8)) ~width:8
              (curcpu t).Cpu.gpr.(i)
          done);
  let pc = curpc t in
  pc.pc_icontexts <- icp :: pc.pc_icontexts;
  icp

let check_ic t ~icp =
  match t.mode with
  | Native_inline -> ()
  | Sva_mediated ->
      if Machine.read_int t.machine ~addr:icp ~width:8 <> ic_magic then
        failwith "SVA-OS: bad interrupt context handle"

let icontext_save t ~icp ~isp =
  op t;
  check_ic t ~icp;
  validate_buffer t ~addr:isp ~len:Cpu.integer_state_size;
  Machine.blit t.machine ~src:(icp + 32) ~dst:isp ~len:Cpu.integer_state_size

let icontext_load t ~icp ~isp =
  op t;
  check_ic t ~icp;
  validate_buffer t ~addr:isp ~len:Cpu.integer_state_size;
  Machine.with_svm_mode t.machine (fun () ->
      Machine.blit t.machine ~src:isp ~dst:(icp + 32) ~len:Cpu.integer_state_size)

let icontext_commit t ~icp =
  op t;
  check_ic t ~icp;
  (* Commit the full interrupted state (the lazy part) to memory. *)
  Machine.with_svm_mode t.machine (fun () ->
      Cpu.save_integer (curcpu t) t.machine ~addr:(icp + 32))

let ipush_function t ~icp ~fn ~arg =
  op t;
  check_ic t ~icp;
  Machine.with_svm_mode t.machine (fun () ->
      let flags = Machine.read_int t.machine ~addr:(icp + 8) ~width:8 in
      Machine.write_int t.machine ~addr:(icp + 8) ~width:8 (Int64.logor flags 2L);
      Machine.write_int t.machine ~addr:(icp + 16) ~width:8 (Int64.of_int fn);
      Machine.write_int t.machine ~addr:(icp + 24) ~width:8 arg)

let ipush_pending t ~icp =
  check_ic t ~icp;
  let flags = Machine.read_int t.machine ~addr:(icp + 8) ~width:8 in
  if Int64.logand flags 2L = 0L then None
  else begin
    Machine.with_svm_mode t.machine (fun () ->
        Machine.write_int t.machine ~addr:(icp + 8) ~width:8
          (Int64.logand flags (Int64.lognot 2L)));
    let fn = Machine.read_int t.machine ~addr:(icp + 16) ~width:8 in
    let arg = Machine.read_int t.machine ~addr:(icp + 24) ~width:8 in
    Some (Int64.to_int fn, arg)
  end

let was_privileged t ~icp =
  op t;
  check_ic t ~icp;
  Int64.logand (Machine.read_int t.machine ~addr:(icp + 8) ~width:8) 1L <> 0L

let icontext_destroy t ~icp =
  check_ic t ~icp;
  let pc = curpc t in
  match pc.pc_icontexts with
  | top :: rest when top = icp ->
      Machine.with_svm_mode t.machine (fun () ->
          Machine.write_int t.machine ~addr:icp ~width:8 0L);
      pc.pc_icontexts <- rest
  | _ -> failwith "SVA-OS: unbalanced interrupt context destroy"

let icontext_depth t = List.length (curpc t).pc_icontexts

(* ---------- registration ---------- *)

let register_syscall t ~num ~handler =
  op t;
  Hashtbl.replace t.syscalls num handler

let syscall_handler t ~num = Hashtbl.find_opt t.syscalls num

let register_interrupt t ~vector ~handler =
  op t;
  Hashtbl.replace t.interrupts vector handler

let interrupt_handler t ~vector = Hashtbl.find_opt t.interrupts vector

(* ---------- MMU ---------- *)

let get_space t sid =
  match Hashtbl.find_opt t.spaces sid with
  | Some sp -> sp
  | None -> failwith (Printf.sprintf "SVA-OS: unknown address space %d" sid)

let mmu_new_space t =
  op t;
  let sp = Mmu.new_space t.mmu in
  Hashtbl.replace t.spaces (Mmu.space_id sp) sp;
  Mmu.space_id sp

let mmu_clone_space t ~sid =
  op t;
  let sp = Mmu.clone_space t.mmu (get_space t sid) in
  Hashtbl.replace t.spaces (Mmu.space_id sp) sp;
  Mmu.space_id sp

let mmu_destroy_space t ~sid =
  op t;
  let sp = get_space t sid in
  Mmu.destroy_space t.mmu sp;
  Hashtbl.remove t.spaces sid

let mmu_activate t ~sid =
  op t;
  Mmu.activate t.mmu (get_space t sid)

let mmu_map_page t ~sid ~vpn ~ppn ~writable =
  op t;
  Mmu.map_page (get_space t sid) ~vpn ~ppn
    ~prot:{ Mmu.p_read = true; p_write = writable; p_user = true }

let mmu_unmap_page t ~sid ~vpn =
  op t;
  Mmu.unmap_page (get_space t sid) ~vpn

let mmu_page_count t ~sid =
  op t;
  Mmu.page_count (get_space t sid)

let mmu_pages t ~sid = Mmu.mapped_pages (get_space t sid)

(* ---------- I/O ---------- *)

let io_console_write t ~addr ~len =
  op t;
  Devices.console_write t.devices (Machine.read t.machine ~addr ~len)

let io_disk_read t ~block ~addr =
  op t;
  Machine.write t.machine ~addr (Devices.disk_read t.devices ~block)

let io_disk_write t ~block ~addr =
  op t;
  Devices.disk_write t.devices ~block
    (Machine.read t.machine ~addr ~len:t.devices.Devices.disk.Devices.rd_block_size)

let io_nic_send t ~proto ~addr ~len =
  op t;
  Devices.nic_send t.devices
    { Devices.fr_proto = proto; fr_payload = Machine.read t.machine ~addr ~len }

let io_nic_recv t ~addr ~maxlen =
  op t;
  match Devices.nic_recv t.devices with
  | None -> -1
  | Some fr ->
      let payload_len = min (Bytes.length fr.Devices.fr_payload) (maxlen - 4) in
      Machine.write_int t.machine ~addr ~width:4 (Int64.of_int fr.Devices.fr_proto);
      Machine.write t.machine ~addr:(addr + 4)
        (Bytes.sub fr.Devices.fr_payload 0 payload_len);
      payload_len + 4

let timer_read t =
  op t;
  Devices.timer_tick t.devices;
  Devices.timer_read t.devices

let cli t =
  op t;
  Sva_rt.Stats.bump_cli ();
  (curcpu t).Cpu.interrupts_enabled <- false

let sti t =
  op t;
  Sva_rt.Stats.bump_sti ();
  (curcpu t).Cpu.interrupts_enabled <- true

(* ---------- spinlocks ----------

   The lock word is identified by its kernel address and records its
   holder CPU.  The scheduler interleaves CPUs at trap granularity, so a
   contended acquire could never succeed: re-acquiring your own lock is
   a self-deadlock, and acquiring another CPU's lock would spin forever
   (the holder only runs again after this CPU yields, which a spinning
   acquire never does).  Both are reported as failures, as is releasing
   a lock this CPU does not hold — bugs the static lockset analysis is
   meant to rule out before execution. *)

let lock_acquire t ~lock =
  op t;
  Sva_rt.Stats.bump_lock_acquire ();
  (match Hashtbl.find_opt t.locks lock with
  | Some holder when holder = current_cpu t ->
      failwith "SVA-OS: deadlock: lock already held"
  | Some holder ->
      failwith
        (Printf.sprintf
           "SVA-OS: deadlock: spinning on a lock held by CPU %d" holder)
  | None -> ());
  Hashtbl.replace t.locks lock (current_cpu t)

let lock_release t ~lock =
  op t;
  Sva_rt.Stats.bump_lock_release ();
  (match Hashtbl.find_opt t.locks lock with
  | None -> failwith "SVA-OS: releasing a lock that is not held"
  | Some holder when holder <> current_cpu t ->
      failwith
        (Printf.sprintf "SVA-OS: releasing a lock held by CPU %d" holder)
  | Some _ -> ());
  Hashtbl.remove t.locks lock

let lock_held t ~lock = Hashtbl.mem t.locks lock

let heap_base _ = Machine.heap_base
let heap_size _ = Machine.heap_size
let user_base _ = Machine.user_base
let user_size _ = Machine.user_size
let stack_base _ = Machine.stack_base
let stack_size _ = Machine.stack_size
