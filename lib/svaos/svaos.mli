(** SVA-OS: the OS support operations of the virtual instruction set
    (Section 3.3, Tables 1 and 2).

    SVA-OS provides {e mechanisms, not policies}: saving/restoring native
    processor state, manipulating interrupt contexts, MMU configuration,
    I/O, and registration of interrupt/system-call handlers.  All
    privileged hardware operations go through these functions, which is
    what lets the SVM monitor and control them.

    Two execution modes model the measurement axis of Section 7.1:

    - {!mode.Native_inline} — the pre-port kernel: privileged operations
      are open-coded with no abstraction layer (minimal bookkeeping);
    - {!mode.Sva_mediated} — the SVA port: every operation validates its
      arguments, runs inside the SVM privilege boundary and keeps the
      interrupt-context machinery honest.  This is the "Linux-SVA-GCC vs
      Linux-native" overhead source. *)

open Sva_hw

type mode = Native_inline | Sva_mediated

(** Per-CPU SVA-OS state: register file, interrupt-context stack and
    pending-IPI queue of one modeled CPU. *)
type percpu = {
  pc_id : int;
  pc_cpu : Cpu.t;
  mutable pc_icontexts : int list;
      (** stack of live interrupt context addrs on this CPU *)
  mutable pc_ipis : int list;  (** pending IPI vectors, oldest first *)
}

type t = {
  machine : Machine.t;
  cpu : Cpu.t;
      (** alias of CPU 0's register state ([cpus.(0).pc_cpu]) — the whole
          state on a default 1-CPU instance, kept so single-CPU callers
          need not know about SMP *)
  cpus : percpu array;
  smp : Sva_rt.Smp.t;  (** this instance's CPU context (never shared) *)
  mmu : Mmu.t;
  devices : Devices.t;
  mutable mode : mode;
  syscalls : (int, string) Hashtbl.t;  (** syscall number -> handler symbol *)
  interrupts : (int, string) Hashtbl.t;  (** vector -> handler symbol *)
  spaces : (int, Mmu.space) Hashtbl.t;  (** space id -> MMU space *)
  mutable ops_count : int;  (** SVA-OS operations executed *)
  locks : (int, int) Hashtbl.t;
      (** held spinlocks: lock address -> holder CPU *)
}

val create : ?mode:mode -> ?ncpus:int -> unit -> t
(** [ncpus] (default 1) modeled CPUs, each with private register state,
    interrupt-context stack, trap scratch and IPI queue; memory, MMU,
    devices and handler tables are shared, as on real SMP hardware.
    @raise Invalid_argument outside [1, Machine.max_cpus]. *)

val set_mode : t -> mode -> unit

(** {2 Simulated SMP}

    The SVM interleaves the modeled CPUs on one host thread; the
    scheduler ([Ukern.Boot.run_smp]) selects which CPU executes with
    {!switch_cpu}, which also redirects the per-CPU {!Sva_rt.Stats}
    banks and the {!Sva_rt.Trace} CPU tag so every dynamic counter and
    event is attributed to the executing CPU. *)

val smpctx : t -> Sva_rt.Smp.t
(** This instance's CPU context — thread it into per-CPU-sharded runtime
    structures ([Metapool_rt.create ~smp]). *)

val ncpus : t -> int
val current_cpu : t -> int
val switch_cpu : t -> int -> unit
val cpu_state : t -> cpu:int -> Cpu.t
(** Register state of one CPU (not just the current one). *)

val ipi_send : t -> cpu:int -> vector:int -> unit
(** [sva_ipi_send]: enqueue interrupt [vector] on the target CPU.  The
    vector is delivered the next time the scheduler runs that CPU with
    interrupts enabled.  Self-IPIs are allowed.
    @raise Failure on a nonexistent CPU. *)

val ipi_pending : t -> bool
(** Whether the current CPU has undelivered IPIs. *)

val take_ipi : t -> int option
(** Dequeue the oldest pending IPI vector on the current CPU (counted as
    delivered); [None] if the queue is empty.  Scheduler-internal: the
    caller is expected to trap on the returned vector. *)

val interrupts_enabled : t -> bool
(** Current CPU's interrupt flag (set by {!cli}/{!sti}). *)

val icontext_depth : t -> int
(** Live interrupt contexts on the current CPU. *)

(** {2 Table 1: native processor state} *)

val save_integer : t -> buffer:int -> unit
val load_integer : t -> buffer:int -> unit
val save_fp : t -> buffer:int -> always:bool -> bool
val load_fp : t -> buffer:int -> unit

(** {2 Table 2: interrupt contexts}

    An interrupt context is the interrupted control state the SVM saved on
    kernel entry.  The kernel holds an opaque handle (its address) and
    manipulates it only through these operations. *)

val icontext_size : int

val icontext_create : t -> sp:int -> was_privileged:bool -> int
(** SVM-internal: on an interrupt/trap, lay down an interrupt context at
    stack address [sp] capturing the interrupted state; returns the
    handle.  In [Sva_mediated] mode the context is integrity-tagged. *)

val icontext_save : t -> icp:int -> isp:int -> unit
(** Save interrupt context [icp] into [isp] as Integer State. *)

val icontext_load : t -> icp:int -> isp:int -> unit
(** Load Integer State [isp] into interrupt context [icp]. *)

val icontext_commit : t -> icp:int -> unit
(** Commit the entire interrupt context to memory. *)

val ipush_function : t -> icp:int -> fn:int -> arg:int64 -> unit
(** Modify [icp] so that function [fn] (a code address) is called with
    [arg] when the context resumes — signal-handler dispatch. *)

val ipush_pending : t -> icp:int -> (int * int64) option
(** SVM-internal: the pending pushed call, if any (consumed). *)

val was_privileged : t -> icp:int -> bool

val icontext_destroy : t -> icp:int -> unit
(** SVM-internal: pop the context on kernel exit.
    @raise Failure on unbalanced destroy or a tampered context tag. *)

(** {2 Privileged operations: MMU, interrupts, I/O} *)

val register_syscall : t -> num:int -> handler:string -> unit
val syscall_handler : t -> num:int -> string option
val register_interrupt : t -> vector:int -> handler:string -> unit
val interrupt_handler : t -> vector:int -> string option

val mmu_new_space : t -> int
val mmu_clone_space : t -> sid:int -> int
val mmu_destroy_space : t -> sid:int -> unit
val mmu_activate : t -> sid:int -> unit
val mmu_map_page : t -> sid:int -> vpn:int -> ppn:int -> writable:bool -> unit
val mmu_unmap_page : t -> sid:int -> vpn:int -> unit
val mmu_page_count : t -> sid:int -> int
val mmu_pages : t -> sid:int -> (int * int) list

val io_console_write : t -> addr:int -> len:int -> unit
val io_disk_read : t -> block:int -> addr:int -> unit
val io_disk_write : t -> block:int -> addr:int -> unit

val io_nic_send : t -> proto:int -> addr:int -> len:int -> unit

val io_nic_recv : t -> addr:int -> maxlen:int -> int
(** Copy the next frame as [proto:4 bytes][payload] into kernel memory at
    [addr]; returns total bytes written or -1 when no frame is queued. *)

val timer_read : t -> int64

val cli : t -> unit
val sti : t -> unit

(** {2 Spinlocks}

    Locks are identified by the kernel address of the lock word and
    record their holder CPU.  CPUs are interleaved at trap granularity,
    so a contended acquire can never succeed: re-acquiring your own lock
    fails as a self-deadlock, spinning on another CPU's lock fails as a
    cross-CPU deadlock (the holder cannot run while this CPU spins), and
    releasing a lock this CPU does not hold fails as a bracketing bug —
    all kernel defects the static lockset analysis is meant to rule out
    before execution. *)

val lock_acquire : t -> lock:int -> unit
val lock_release : t -> lock:int -> unit
val lock_held : t -> lock:int -> bool

(** {2 Constants exposed to the kernel} *)

val heap_base : t -> int
val heap_size : t -> int
val user_base : t -> int
val user_size : t -> int
val stack_base : t -> int
val stack_size : t -> int
