(** SVA-OS: the OS support operations of the virtual instruction set
    (Section 3.3, Tables 1 and 2).

    SVA-OS provides {e mechanisms, not policies}: saving/restoring native
    processor state, manipulating interrupt contexts, MMU configuration,
    I/O, and registration of interrupt/system-call handlers.  All
    privileged hardware operations go through these functions, which is
    what lets the SVM monitor and control them.

    Two execution modes model the measurement axis of Section 7.1:

    - {!mode.Native_inline} — the pre-port kernel: privileged operations
      are open-coded with no abstraction layer (minimal bookkeeping);
    - {!mode.Sva_mediated} — the SVA port: every operation validates its
      arguments, runs inside the SVM privilege boundary and keeps the
      interrupt-context machinery honest.  This is the "Linux-SVA-GCC vs
      Linux-native" overhead source. *)

open Sva_hw

type mode = Native_inline | Sva_mediated

type t = {
  machine : Machine.t;
  cpu : Cpu.t;
  mmu : Mmu.t;
  devices : Devices.t;
  mutable mode : mode;
  syscalls : (int, string) Hashtbl.t;  (** syscall number -> handler symbol *)
  interrupts : (int, string) Hashtbl.t;  (** vector -> handler symbol *)
  spaces : (int, Mmu.space) Hashtbl.t;  (** space id -> MMU space *)
  mutable icontexts : int list;  (** stack of live interrupt context addrs *)
  mutable ops_count : int;  (** SVA-OS operations executed *)
  locks : (int, unit) Hashtbl.t;  (** held spinlocks, keyed by lock address *)
}

val create : ?mode:mode -> unit -> t

val set_mode : t -> mode -> unit

(** {2 Table 1: native processor state} *)

val save_integer : t -> buffer:int -> unit
val load_integer : t -> buffer:int -> unit
val save_fp : t -> buffer:int -> always:bool -> bool
val load_fp : t -> buffer:int -> unit

(** {2 Table 2: interrupt contexts}

    An interrupt context is the interrupted control state the SVM saved on
    kernel entry.  The kernel holds an opaque handle (its address) and
    manipulates it only through these operations. *)

val icontext_size : int

val icontext_create : t -> sp:int -> was_privileged:bool -> int
(** SVM-internal: on an interrupt/trap, lay down an interrupt context at
    stack address [sp] capturing the interrupted state; returns the
    handle.  In [Sva_mediated] mode the context is integrity-tagged. *)

val icontext_save : t -> icp:int -> isp:int -> unit
(** Save interrupt context [icp] into [isp] as Integer State. *)

val icontext_load : t -> icp:int -> isp:int -> unit
(** Load Integer State [isp] into interrupt context [icp]. *)

val icontext_commit : t -> icp:int -> unit
(** Commit the entire interrupt context to memory. *)

val ipush_function : t -> icp:int -> fn:int -> arg:int64 -> unit
(** Modify [icp] so that function [fn] (a code address) is called with
    [arg] when the context resumes — signal-handler dispatch. *)

val ipush_pending : t -> icp:int -> (int * int64) option
(** SVM-internal: the pending pushed call, if any (consumed). *)

val was_privileged : t -> icp:int -> bool

val icontext_destroy : t -> icp:int -> unit
(** SVM-internal: pop the context on kernel exit.
    @raise Failure on unbalanced destroy or a tampered context tag. *)

(** {2 Privileged operations: MMU, interrupts, I/O} *)

val register_syscall : t -> num:int -> handler:string -> unit
val syscall_handler : t -> num:int -> string option
val register_interrupt : t -> vector:int -> handler:string -> unit
val interrupt_handler : t -> vector:int -> string option

val mmu_new_space : t -> int
val mmu_clone_space : t -> sid:int -> int
val mmu_destroy_space : t -> sid:int -> unit
val mmu_activate : t -> sid:int -> unit
val mmu_map_page : t -> sid:int -> vpn:int -> ppn:int -> writable:bool -> unit
val mmu_unmap_page : t -> sid:int -> vpn:int -> unit
val mmu_page_count : t -> sid:int -> int
val mmu_pages : t -> sid:int -> (int * int) list

val io_console_write : t -> addr:int -> len:int -> unit
val io_disk_read : t -> block:int -> addr:int -> unit
val io_disk_write : t -> block:int -> addr:int -> unit

val io_nic_send : t -> proto:int -> addr:int -> len:int -> unit

val io_nic_recv : t -> addr:int -> maxlen:int -> int
(** Copy the next frame as [proto:4 bytes][payload] into kernel memory at
    [addr]; returns total bytes written or -1 when no frame is queued. *)

val timer_read : t -> int64

val cli : t -> unit
val sti : t -> unit

(** {2 Spinlocks}

    Locks are identified by the kernel address of the lock word.  On the
    single modeled CPU a contended acquire can never succeed, so
    acquiring a held lock fails as a deadlock and releasing an unheld
    lock fails as a bracketing bug — both are kernel defects the static
    lockset analysis is meant to rule out before execution. *)

val lock_acquire : t -> lock:int -> unit
val lock_release : t -> lock:int -> unit
val lock_held : t -> lock:int -> bool

(** {2 Constants exposed to the kernel} *)

val heap_base : t -> int
val heap_size : t -> int
val user_base : t -> int
val user_size : t -> int
val stack_base : t -> int
val stack_size : t -> int
