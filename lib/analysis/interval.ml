(* Value-range abstract interpretation over the SVA IR (SSA form).

   An untrusted analysis in the Section 5 spirit: intervals are computed
   with widening/narrowing and branch-sensitive refinement, and every
   range used to elide a run-time check is exported as a *certificate*
   that the small trusted checker ({!Sva_tyck.Rangecert}) re-verifies
   with purely local rules.  Interval itself therefore stays out of the
   TCB; only the pure arithmetic kernel at the top of this file is
   shared with the checker (and exercised by {!selftest} against
   {!Constfold} on concrete values). *)

open Sva_ir

module IM = Map.Make (Int)
module SS = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* The interval domain: the pure arithmetic kernel.                    *)
(* ------------------------------------------------------------------ *)

(* [Iv (lo, hi)]: None is the infinite bound on that side.  Values are
   the SVM's canonical register representation (sign-extended w-bit
   two's complement), so bounds are ordinary signed int64s. *)
type ival = Bot | Iv of int64 option * int64 option

let top = Iv (None, None)
let const n = Iv (Some n, Some n)
let range lo hi = if lo > hi then Bot else Iv (Some lo, Some hi)
let is_top = function Iv (None, None) -> true | _ -> false
let is_bot = function Bot -> true | _ -> false

(* Bound order: [lo_le] treats None as -inf, [hi_le] treats None as
   +inf. *)
let lo_le a b =
  match (a, b) with
  | None, _ -> true
  | _, None -> false
  | Some x, Some y -> x <= y

let hi_le a b =
  match (a, b) with
  | _, None -> true
  | None, _ -> false
  | Some x, Some y -> x <= y

let lo_min a b = if lo_le a b then a else b
let lo_max a b = if lo_le a b then b else a
let hi_min a b = if hi_le a b then a else b
let hi_max a b = if hi_le a b then b else a
let norm lo hi = match (lo, hi) with
  | Some l, Some h when l > h -> Bot
  | _ -> Iv (lo, hi)

let equal_ival (a : ival) (b : ival) = a = b

let join_ival a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Iv (l1, h1), Iv (l2, h2) -> Iv (lo_min l1 l2, hi_max h1 h2)

let meet_ival a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (l1, h1), Iv (l2, h2) -> norm (lo_max l1 l2) (hi_min h1 h2)

let subset a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | Iv (l1, h1), Iv (l2, h2) -> lo_le l2 l1 && hi_le h1 h2

let contains iv n = subset (const n) iv

(* Classic interval widening: any bound that moved jumps to infinity.
   Returns an upper bound of both arguments. *)
let widen_ival old cur =
  match (old, cur) with
  | Bot, x | x, Bot -> x
  | Iv (l1, h1), Iv (l2, h2) ->
      Iv ((if lo_le l1 l2 then l1 else None),
          (if hi_le h2 h1 then h1 else None))

(* The canonical value range of a w-bit register. *)
let width_range w =
  if w >= 64 then top
  else if w <= 1 then range 0L 1L
  else
    let p = Int64.shift_left 1L (w - 1) in
    range (Int64.neg p) (Int64.sub p 1L)

(* Sound post-op clamp at width [w]: if the exact interval fits inside
   the representable range, the wrapped result equals the exact one on
   every concrete point; otherwise give up to the full width range. *)
let wrap w iv =
  match iv with
  | Bot -> Bot
  | _ -> if subset iv (width_range w) then iv else width_range w

(* -- overflow-checked bound arithmetic (None = infinity) -- *)

let badd a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some x, Some y ->
      let s = Int64.add x y in
      if x >= 0L = (y >= 0L) && s >= 0L <> (x >= 0L) then None else Some s

let bneg = function
  | None -> None
  | Some x -> if x = Int64.min_int then None else Some (Int64.neg x)

let add_iv a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (l1, h1), Iv (l2, h2) -> Iv (badd l1 l2, badd h1 h2)

let neg_iv = function Bot -> Bot | Iv (l, h) -> Iv (bneg h, bneg l)
let sub_iv a b = add_iv a (neg_iv b)

let bmul x y =
  if x = 0L || y = 0L then Some 0L
  else if (x = Int64.min_int && y = -1L) || (y = Int64.min_int && x = -1L)
  then None
  else
    let p = Int64.mul x y in
    if Int64.div p y = x then Some p else None

let mul_iv a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (Some l1, Some h1), Iv (Some l2, Some h2) -> (
      let ps = [ bmul l1 l2; bmul l1 h2; bmul h1 l2; bmul h1 h2 ] in
      if List.mem None ps then top
      else
        match List.filter_map Fun.id ps with
        | v :: vs ->
            range (List.fold_left min v vs) (List.fold_left max v vs)
        | [] -> top)
  | _ -> top

let nonneg = function Iv (Some l, _) -> l >= 0L | Bot -> true | _ -> false
let hi_of = function Iv (_, h) -> h | Bot -> None
let as_const = function Iv (Some l, Some h) when l = h -> Some l | _ -> None

(* Fill every bit at or below the most significant set bit. *)
let smear v =
  let v = Int64.logor v (Int64.shift_right_logical v 1) in
  let v = Int64.logor v (Int64.shift_right_logical v 2) in
  let v = Int64.logor v (Int64.shift_right_logical v 4) in
  let v = Int64.logor v (Int64.shift_right_logical v 8) in
  let v = Int64.logor v (Int64.shift_right_logical v 16) in
  Int64.logor v (Int64.shift_right_logical v 32)

(* Monotone map over both bounds. *)
let map_bounds f = function
  | Bot -> Bot
  | Iv (l, h) -> Iv (Option.map f l, Option.map f h)

(* Every 64-bit value is an int64: infinite bounds can be clamped to the
   type limits, after which a [None] bound in a 64-bit arithmetic result
   can only mean the mathematical value overflowed (wrapped). *)
let clamp64 = function
  | Bot -> Bot
  | Iv (l, h) ->
      Iv ((match l with None -> Some Int64.min_int | s -> s),
          (match h with None -> Some Int64.max_int | s -> s))

(* Abstract transfer for [Instr.Binop (op, a, b)] at result width [w].
   Must over-approximate {!Constfold.eval_binop}'s concrete semantics
   (wrap-around at [w]; division by zero traps, so the continuing path
   may assume any claim). *)
let eval_binop op w a0 b0 =
  if is_bot a0 || is_bot b0 then Bot
  else
    (* operands are canonical at [w]; at w=64 additionally clamp the
       infinite bounds so overflow is detectable below *)
    let canon v =
      let v = meet_ival v (width_range w) in
      if w >= 64 then clamp64 v else v
    in
    let a = canon a0 and b = canon b0 in
    if is_bot a || is_bot b then Bot
  else
    (* at w=64 a [None] bound after finite-input arithmetic means the
       exact result wrapped: give up to top *)
    let wrap w iv =
      if w >= 64 then
        match iv with Bot -> Bot | Iv (Some _, Some _) -> iv | _ -> top
      else wrap w iv
    in
    let fallback = width_range w in
    match (op : Instr.binop) with
    | Instr.Add -> wrap w (add_iv a b)
    | Instr.Sub -> wrap w (sub_iv a b)
    | Instr.Mul -> wrap w (mul_iv a b)
    | Instr.And -> (
        let masked m = if m >= 0L then range 0L m else fallback in
        match (as_const a, as_const b) with
        | _, Some m -> wrap w (masked m)
        | Some m, _ -> wrap w (masked m)
        | None, None ->
            if nonneg a && nonneg b then
              match (hi_of a, hi_of b) with
              | Some ha, Some hb -> wrap w (range 0L (min ha hb))
              | _ -> fallback
            else fallback)
    | Instr.Or | Instr.Xor ->
        if nonneg a && nonneg b then
          match (hi_of a, hi_of b) with
          | Some ha, Some hb -> wrap w (range 0L (smear (Int64.logor ha hb)))
          | _ -> fallback
        else fallback
    | Instr.Shl -> (
        match as_const b with
        | Some s when s >= 0L && s <= 62L ->
            wrap w (mul_iv a (const (Int64.shift_left 1L (Int64.to_int s))))
        | _ -> fallback)
    | Instr.Lshr -> (
        match as_const b with
        | Some 0L -> wrap w a
        | Some s when s >= 1L && s <= 63L ->
            let s = Int64.to_int s in
            let base =
              if w >= 64 then range 0L (Int64.shift_right_logical (-1L) s)
              else if w - s <= 0 then const 0L
              else range 0L (Int64.sub (Int64.shift_left 1L (w - s)) 1L)
            in
            let tight =
              if nonneg a then map_bounds (fun x -> Int64.shift_right x s) a
              else top
            in
            wrap w (meet_ival base tight)
        | _ ->
            (* shift amount unknown: an unsigned shift of a nonneg value
               only shrinks it *)
            if nonneg a then
              match hi_of a with
              | Some h -> wrap w (range 0L h)
              | None -> Iv (Some 0L, None)
            else fallback)
    | Instr.Ashr -> (
        match as_const b with
        | Some s when s >= 0L && s <= 63L ->
            wrap w (map_bounds (fun x -> Int64.shift_right x (Int64.to_int s)) a)
        | _ ->
            if nonneg a then
              match hi_of a with
              | Some h -> wrap w (range 0L h)
              | None -> Iv (Some 0L, None)
            else fallback)
    | Instr.Sdiv -> (
        match as_const b with
        | Some c when c > 0L ->
            wrap w (map_bounds (fun x -> Int64.div x c) a)
        | _ -> fallback)
    | Instr.Udiv -> (
        match as_const b with
        | Some c when c > 0L && nonneg a ->
            wrap w (map_bounds (fun x -> Int64.div x c) a)
        | _ -> fallback)
    | Instr.Srem -> (
        match as_const b with
        | Some c when c <> 0L && c <> Int64.min_int ->
            let m = Int64.sub (Int64.abs c) 1L in
            wrap w (if nonneg a then range 0L m else range (Int64.neg m) m)
        | _ -> fallback)
    | Instr.Urem -> (
        match as_const b with
        | Some c when c > 0L -> wrap w (range 0L (Int64.sub c 1L))
        | _ -> fallback)
    | Instr.Fadd | Instr.Fsub | Instr.Fmul | Instr.Fdiv -> top

(* Abstract transfer for casts.  Mirrors the SVM: values are canonical,
   so Sext (and the pointer casts) are the identity, Zext re-reads the
   source bits unsigned, Trunc re-canonicalizes at the target width. *)
let eval_cast c ~src ~dst v =
  if is_bot v then Bot
  else
    match (c : Instr.cast) with
    | Instr.Bitcast | Instr.Inttoptr | Instr.Ptrtoint | Instr.Sext -> v
    | Instr.Zext -> (
        match (src, dst) with
        | Ty.Int sw, Ty.Int dw when dw > sw && sw < 64 ->
            if sw <= 1 then
              (* canonical i1 is already 0/1 *)
              meet_ival v (range 0L 1L)
            else if subset v (range 0L (Int64.sub (Int64.shift_left 1L (sw - 1)) 1L))
            then v
            else range 0L (Int64.sub (Int64.shift_left 1L sw) 1L)
        | _, Ty.Int dw -> wrap dw v (* same-width zext is the identity *)
        | _ -> v)
    | Instr.Trunc -> (
        match dst with Ty.Int w -> wrap w v | _ -> top)
    | Instr.Fptosi | Instr.Sitofp -> top

(* Constraint on [subject] given that [subject op other] (side = Left)
   or [other op subject] (side = Right) evaluated to TRUE.  The result
   is meant to be met with subject's current interval.  Unsigned
   predicates only yield information when [other] is provably
   non-negative (then u< coincides with the signed order on the
   canonical representation). *)
let rec refine op side other =
  match side with
  | `Right ->
      let swapped : Instr.icmp =
        match (op : Instr.icmp) with
        | Instr.Slt -> Instr.Sgt
        | Instr.Sle -> Instr.Sge
        | Instr.Sgt -> Instr.Slt
        | Instr.Sge -> Instr.Sle
        | Instr.Ult -> Instr.Ugt
        | Instr.Ule -> Instr.Uge
        | Instr.Ugt -> Instr.Ult
        | Instr.Uge -> Instr.Ule
        | (Instr.Eq | Instr.Ne) as o -> o
      in
      refine swapped `Left other
  | `Left -> (
      match other with
      | Bot -> Bot (* the comparison is unreachable *)
      | Iv (o_lo, o_hi) -> (
          let lt_hi = function
            | None -> top
            | Some h ->
                if h = Int64.min_int then Bot
                else Iv (None, Some (Int64.pred h))
          in
          let gt_lo = function
            | None -> top
            | Some l ->
                if l = Int64.max_int then Bot
                else Iv (Some (Int64.succ l), None)
          in
          match (op : Instr.icmp) with
          | Instr.Eq -> Iv (o_lo, o_hi)
          | Instr.Ne -> top
          | Instr.Slt -> lt_hi o_hi
          | Instr.Sle -> Iv (None, o_hi)
          | Instr.Sgt -> gt_lo o_lo
          | Instr.Sge -> Iv (o_lo, None)
          | Instr.Ult -> (
              match (o_lo, o_hi) with
              | Some l, Some h when l >= 0L ->
                  if h <= 0L then Bot else range 0L (Int64.pred h)
              | _ -> top)
          | Instr.Ule -> (
              match (o_lo, o_hi) with
              | Some l, Some h when l >= 0L -> range 0L h
              | _ -> top)
          | Instr.Ugt | Instr.Uge -> top))

let negate_icmp : Instr.icmp -> Instr.icmp = function
  | Instr.Eq -> Instr.Ne
  | Instr.Ne -> Instr.Eq
  | Instr.Slt -> Instr.Sge
  | Instr.Sle -> Instr.Sgt
  | Instr.Sgt -> Instr.Sle
  | Instr.Sge -> Instr.Slt
  | Instr.Ult -> Instr.Uge
  | Instr.Ule -> Instr.Ugt
  | Instr.Ugt -> Instr.Ule
  | Instr.Uge -> Instr.Ult

let ival_to_string = function
  | Bot -> "bot"
  | Iv (None, None) -> "top"
  | Iv (l, h) ->
      let b = function None -> "inf" | Some x -> Int64.to_string x in
      Printf.sprintf "[%s,%s]" (b l) (b h)

(* ------------------------------------------------------------------ *)
(* Per-function analysis.                                              *)
(* ------------------------------------------------------------------ *)

(* Abstract environment: interval per int-typed SSA register.  A missing
   key means "not computed on any path processed so far" — the union
   join treats it as bottom, and so does {!value_of}.  That optimism is
   sound at the fixpoint: [step] stores a key for every int-typed
   result, and SSA dominance guarantees the key is present on every
   path that can reach a use. *)
module EnvL = struct
  type t = ival IM.t

  let bottom = IM.empty
  let equal = IM.equal equal_ival
  let join = IM.union (fun _ a b -> Some (join_ival a b))
end

module Solver = Dataflow.Make (EnvL)

let width_of_ty = function Ty.Int w -> Some w | _ -> None

let value_of env (v : Value.t) =
  match v with
  | Value.Imm (Ty.Int _, n) -> const n
  | Value.Reg (id, Ty.Int _, _) -> (
      match IM.find_opt id env with Some iv -> iv | None -> Bot)
  | _ -> top

(* Shared instruction evaluation: given the operand intervals (in
   [Instr.operands] order; phis excluded), the result interval.  Also
   the rule {!Sva_tyck.Rangecert} replays for [Jdef] facts. *)
let eval_def (i : Instr.t) ivs =
  let v =
    match (i.Instr.kind, ivs) with
    | Instr.Binop (op, _, _), [ a; b ] -> (
        match i.Instr.ty with
        | Ty.Int w -> eval_binop op w a b
        | _ -> top)
    | Instr.Icmp _, _ -> range 0L 1L
    | Instr.Cast (c, x, ty), [ xv ] -> eval_cast c ~src:(Value.ty x) ~dst:ty xv
    | Instr.Select (_, _, _), [ _; a; b ] -> join_ival a b
    | _ -> top
  in
  (* results are canonical at [w] (arithmetic wrap-around is already
     handled inside [eval_binop]/[eval_cast]); the meet keeps partial
     bounds that an all-or-nothing [wrap] would discard *)
  match i.Instr.ty with Ty.Int w -> meet_ival v (width_range w) | _ -> v

let step ret_of env (i : Instr.t) =
  match width_of_ty i.Instr.ty with
  | None -> env
  | Some w ->
      let v =
        match i.Instr.kind with
        | Instr.Binop _ | Instr.Icmp _ | Instr.Cast _ | Instr.Select _ ->
            eval_def i (List.map (value_of env) (Instr.operands i.Instr.kind))
        | Instr.Phi incoming ->
            List.fold_left
              (fun acc (_, x) -> join_ival acc (value_of env x))
              Bot incoming
        | Instr.Call (Value.Fn (g, _), _) -> ret_of g
        | _ -> top
      in
      IM.add i.Instr.id (meet_ival v (width_range w)) env

let transfer_block ret_of (b : Func.block) env =
  List.fold_left (step ret_of) env b.Func.insns

(* Resolve a branch condition to the icmp that decides it, peeling the
   int-cast and bool-retest chains MiniC lowering produces.  [pos] is
   true on the then-edge. *)
let rec resolve_cond_l lookup (v : Value.t) pos depth =
  if depth > 12 then None
  else
    let def_of = function
      | Value.Reg (id, _, _) -> (lookup id : Instr.t option)
      | _ -> None
    in
    match def_of v with
    | Some { Instr.kind = Instr.Cast ((Instr.Zext | Instr.Sext | Instr.Trunc), x, _); _ } ->
        resolve_cond_l lookup x pos (depth + 1)
    | Some { Instr.kind = Instr.Icmp (op, a, b); _ } -> (
        (* [icmp ne x, 0] re-tests boolean x; [icmp eq x, 0] negates it *)
        let nested =
          match (op, b) with
          | Instr.Ne, Value.Imm (_, 0L) -> resolve_cond_l lookup a pos (depth + 1)
          | Instr.Eq, Value.Imm (_, 0L) ->
              resolve_cond_l lookup a (not pos) (depth + 1)
          | _ -> None
        in
        match nested with
        | Some _ -> nested
        | None -> Some (if pos then (op, a, b) else (negate_icmp op, a, b)))
    | _ -> None

let branch_cond ~lookup v ~pos = resolve_cond_l lookup v pos 0

let resolve_cond defs v pos depth =
  resolve_cond_l
    (fun id -> Option.map snd (Hashtbl.find_opt defs id))
    v pos depth

(* Edge refinement: meet the branch constraint into both icmp operands
   when the source block ends in a two-way conditional branch. *)
let refine_env defs (f : Func.t) ~src ~dst env =
  match (Func.find_block f src).Func.term with
  | Instr.Br (cond, tl, el) when tl <> el -> (
      match resolve_cond defs cond (dst = tl) 0 with
      | None -> env
      | Some (op, a, b) ->
          let apply subj side env =
            match subj with
            | Value.Reg (id, Ty.Int _, _) ->
                let other = if side = `Left then b else a in
                let cons = refine op side (value_of env other) in
                IM.add id (meet_ival (value_of env subj) cons) env
            | _ -> env
          in
          env |> apply a `Left |> apply b `Right)
  | _ -> env

let widen_env headers ~label ~old ~cur =
  if not (SS.mem label headers) then cur
  else
    IM.merge
      (fun _ o c ->
        match (o, c) with
        | Some o, Some c -> Some (widen_ival o c)
        | Some o, None -> Some o
        | None, c -> c)
      old cur

type finfo = {
  fi_func : Func.t;
  fi_cfg : Cfg.t;
  fi_defs : (int, string * Instr.t) Hashtbl.t;  (** reg id -> (block, instr) *)
  fi_nparams : int;
  fi_ret_of : string -> ival;  (** callee return ranges used during solve *)
  fi_plain : ival IM.t;  (** guard-free per-register fixpoint *)
  fi_input : (string, ival IM.t) Hashtbl.t;  (** refined+narrowed block entry *)
}

let defs_of (f : Func.t) =
  let t = Hashtbl.create 64 in
  Func.iter_instrs f (fun b i ->
      match Instr.result i with
      | Some _ -> Hashtbl.replace t i.Instr.id (b.Func.label, i)
      | None -> ());
  t

let entry_env (f : Func.t) sp =
  List.fold_left
    (fun (k, env) (_, ty) ->
      match ty with
      | Ty.Int _ ->
          let iv = if k < Array.length sp then sp.(k) else top in
          (k + 1, IM.add k iv env)
      | _ -> (k + 1, env))
    (0, IM.empty) f.Func.f_params
  |> snd

(* Two decreasing re-application sweeps from the widened post-fixpoint:
   sound for a monotone transfer, and enough to recover the bounds the
   loop-exit guards give back after widening jumped to infinity. *)
let narrow ret_of defs (f : Func.t) cfg ~entry (r : Solver.result) rounds =
  let out = Hashtbl.create 16 in
  let inp = Hashtbl.create 16 in
  let blocks = Cfg.reachable cfg in
  List.iter (fun l -> Hashtbl.replace out l (r.Solver.output l)) blocks;
  let entry_label = (Func.entry f).Func.label in
  for _ = 1 to rounds do
    List.iter
      (fun l ->
        let flowed =
          List.fold_left
            (fun acc p ->
              let fact =
                match Hashtbl.find_opt out p with
                | Some e -> e
                | None -> IM.empty
              in
              EnvL.join acc (refine_env defs f ~src:p ~dst:l fact))
            EnvL.bottom (Cfg.predecessors cfg l)
        in
        let in_fact = if l = entry_label then EnvL.join entry flowed else flowed in
        Hashtbl.replace inp l in_fact;
        Hashtbl.replace out l (transfer_block ret_of (Func.find_block f l) in_fact))
      blocks
  done;
  inp

let iters = ref 0

let analyze_func ret_of (f : Func.t) cfg defs sp =
  let entry = entry_env f sp in
  let headers = SS.of_list (List.map snd (Cfg.back_edges cfg)) in
  let widen = widen_env headers in
  let transfer = transfer_block ret_of in
  (* guard-free fixpoint: per-register facts every block agrees on *)
  let plain_r = Solver.solve ~entry ~widen ~transfer f cfg in
  iters := !iters + plain_r.Solver.iterations;
  let plain =
    List.fold_left
      (fun acc l -> EnvL.join acc (plain_r.Solver.output l))
      entry (Cfg.reachable cfg)
  in
  (* refined fixpoint with edge constraints, then narrowing *)
  let edge = refine_env defs f in
  let ref_r = Solver.solve ~entry ~edge ~widen ~transfer f cfg in
  iters := !iters + ref_r.Solver.iterations;
  let input = narrow ret_of defs f cfg ~entry ref_r 2 in
  {
    fi_func = f;
    fi_cfg = cfg;
    fi_defs = defs;
    fi_nparams = List.length f.Func.f_params;
    fi_ret_of = ret_of;
    fi_plain = plain;
    fi_input = input;
  }

(* ------------------------------------------------------------------ *)
(* Interprocedural argument/return summaries.                          *)
(* ------------------------------------------------------------------ *)

type fsum = { sp_params : ival array; sp_ret : ival }

let analyzed (f : Func.t) =
  (not (Func.has_attr f Func.Noanalyze)) && f.Func.f_blocks <> []

(* A function whose address escapes (or that the environment may call
   directly) must assume top for its parameters: [Fn] values appearing
   anywhere but the callee slot of a direct call — including intrinsic
   arguments such as syscall-handler registration — escape. *)
let escaped_fns (m : Irmod.t) =
  let esc = Hashtbl.create 16 in
  let note = function
    | Value.Fn (g, _) -> Hashtbl.replace esc g ()
    | _ -> ()
  in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_instrs f (fun _ i ->
          match i.Instr.kind with
          | Instr.Call (Value.Fn _, args) -> List.iter note args
          | k -> List.iter note (Instr.operands k));
      List.iter
        (fun (b : Func.block) ->
          List.iter note (Instr.term_operands b.Func.term))
        f.Func.f_blocks)
    m.Irmod.m_funcs;
  List.iter
    (fun (g : Irmod.global) ->
      match g.Irmod.g_init with
      | Irmod.Ptrs names -> List.iter (fun n -> Hashtbl.replace esc n ()) names
      | _ -> ())
    m.Irmod.m_globals;
  esc

(* Direct call sites of every function, with the calling context (the
   certificate checker re-derives the same table). *)
let direct_callsites (m : Irmod.t) =
  let t : (string, (string * string * Instr.t) list) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_instrs f (fun b i ->
          match i.Instr.kind with
          | Instr.Call (Value.Fn (g, _), _) ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt t g) in
              Hashtbl.replace t g ((f.Func.f_name, b.Func.label, i) :: prev)
          | _ -> ()))
    m.Irmod.m_funcs;
  t

(* ------------------------------------------------------------------ *)
(* Range certificates.                                                 *)
(* ------------------------------------------------------------------ *)

(* Justification of one fact, checkable with purely local rules:
   - [Jwide]: the interval is the full canonical range of the register's
     width (true of every w-bit register, no premises);
   - [Jdef]: re-evaluate the defining instruction over the dep facts;
   - [Jphi]: every incoming value is a constant or dep fact inside the
     claimed interval (the inductive post-fixpoint check);
   - [Jguard]: the interval is the meet of a dominating fact with the
     branch constraint of the unique predecessor's conditional;
   - [Jparam]: the module-level claim registered for this parameter
     (every direct call site justified, address never escapes);
   - [Jret]: the module-level claim registered for the callee's return
     (every [Ret] operand justified). *)
type just =
  | Jwide
  | Jdef
  | Jphi
  | Jguard of { jg_src : string; jg_dst : string }
  | Jparam of int
  | Jret of string

type fact = {
  fa_reg : int;
  mutable fa_ival : ival;
  fa_just : just;
  mutable fa_deps : int option list;
  fa_valid : string;  (** block where the fact holds (and below, by dominance) *)
}

type cert_kind = Cbounds | Cls

type cert = {
  ce_func : string;
  ce_block : string;
  ce_gep : int;  (** instruction (result register) id of the gep *)
  ce_kind : cert_kind;
  ce_idx : (int * int) list;  (** (gep operand position, fact index) *)
}

type bundle = {
  cb_facts : (string, fact array) Hashtbl.t;
  cb_params : (string * int, ival) Hashtbl.t;
  cb_rets : (string, ival) Hashtbl.t;
  cb_certs : cert list;
}

type cstate = {
  cs_fi : finfo;
  mutable cs_rev : fact list;
  mutable cs_n : int;
  mutable cs_arr : fact array;
  cs_def : (int, ival * int option) Hashtbl.t;
  cs_use : (int * string, ival * int option) Hashtbl.t;
}

type result = {
  r_m : Irmod.t;
  r_entries : string -> bool;
  r_eff_entry : string -> bool;
  r_sums : (string, fsum) Hashtbl.t;
  r_cstates : (string, cstate) Hashtbl.t;
  r_order : string list;  (** analyzed functions in module order *)
  r_callsites : (string, (string * string * Instr.t) list) Hashtbl.t;
  r_params_used : (string * int, ival) Hashtbl.t;
  r_rets_used : (string, ival) Hashtbl.t;
  r_certified : (string * int, string * (int * int) list) Hashtbl.t;
  r_taken : (string * int * cert_kind, unit) Hashtbl.t;
  mutable r_certs : cert list;
  r_busy_param : (string * int, unit) Hashtbl.t;
  r_busy_ret : (string, unit) Hashtbl.t;
  r_iterations : int;
}

let cstate_of res fn = Hashtbl.find_opt res.r_cstates fn

let push_fact cs fa =
  cs.cs_rev <- fa :: cs.cs_rev;
  let idx = cs.cs_n in
  cs.cs_n <- idx + 1;
  idx

let reg_width cs reg =
  if reg < cs.cs_fi.fi_nparams then
    match List.nth_opt cs.cs_fi.fi_func.Func.f_params reg with
    | Some (_, Ty.Int w) -> Some w
    | _ -> None
  else
    match Hashtbl.find_opt cs.cs_fi.fi_defs reg with
    | Some (_, i) -> width_of_ty i.Instr.ty
    | None -> None

let ret_claim res g =
  match Hashtbl.find_opt res.r_sums g with Some s -> s.sp_ret | None -> top

(* Refined (narrowed, guard-sensitive) value of a register at its own
   definition: re-run the transfer over the block's refined entry
   environment up to the defining instruction.  For a phi this is the
   inductive loop invariant the exit guards justify — the claim a
   [Jphi] fact carries (sound by induction on execution length, as in
   ABCD). *)
let refined_def_value cs reg =
  let fi = cs.cs_fi in
  match Hashtbl.find_opt fi.fi_defs reg with
  | None -> top
  | Some (blk, _) -> (
      match Hashtbl.find_opt fi.fi_input blk with
      | None -> top
      | Some env0 ->
          let rec go env = function
            | [] -> top
            | (i : Instr.t) :: tl ->
                let env' = step fi.fi_ret_of env i in
                if i.Instr.id = reg && Instr.result i <> None then
                  Option.value ~default:top (IM.find_opt reg env')
                else go env' tl
          in
          go env0 (Func.find_block fi.fi_func blk).Func.insns)

(* Certified value of [reg]'s definition (no guards): a fact whose chain
   the checker can replay.  Returns the interval plus the fact index, or
   [(top, None)] when nothing useful is certifiable. *)
let rec certify_def res cs reg =
  match Hashtbl.find_opt cs.cs_def reg with
  | Some r -> r
  | None ->
      let fin r =
        Hashtbl.replace cs.cs_def reg r;
        r
      in
      let fn = cs.cs_fi.fi_func.Func.f_name in
      let wide blk =
        (* any w-bit register is canonically within width_range w *)
        match reg_width cs reg with
        | Some w when w < 64 ->
            let iv = width_range w in
            fin (iv, Some (push_fact cs
                   { fa_reg = reg; fa_ival = iv; fa_just = Jwide;
                     fa_deps = []; fa_valid = blk }))
        | _ -> fin (top, None)
      in
      if reg < cs.cs_fi.fi_nparams then begin
        let entry_label = (Func.entry cs.cs_fi.fi_func).Func.label in
        let claim =
          match Hashtbl.find_opt res.r_sums fn with
          | Some s when reg < Array.length s.sp_params -> s.sp_params.(reg)
          | _ -> top
        in
        let claimable =
          (not (is_top claim))
          && (not (res.r_eff_entry fn))
          && (not (Hashtbl.mem res.r_busy_param (fn, reg)))
        in
        if claimable && certify_param_claim res fn reg claim then begin
          Hashtbl.replace res.r_params_used (fn, reg) claim;
          fin (claim, Some (push_fact cs
                 { fa_reg = reg; fa_ival = claim; fa_just = Jparam reg;
                   fa_deps = []; fa_valid = entry_label }))
        end
        else wide entry_label
      end
      else
        match Hashtbl.find_opt cs.cs_fi.fi_defs reg with
        | None -> fin (top, None)
        | Some (blk, i) -> (
            match i.Instr.kind with
            | Instr.Phi incoming ->
                let claim = refined_def_value cs reg in
                if is_top claim then wide blk
                else begin
                  let fa =
                    { fa_reg = reg; fa_ival = claim; fa_just = Jphi;
                      fa_deps = []; fa_valid = blk }
                  in
                  let idx = push_fact cs fa in
                  (* pre-register: breaks the cycle through back edges *)
                  Hashtbl.replace cs.cs_def reg (claim, Some idx);
                  fa.fa_deps <-
                    List.map
                      (fun (pred, v) -> snd (certify_value res cs v pred))
                      incoming;
                  (claim, Some idx)
                end
            | Instr.Call (Value.Fn (g, _), _) ->
                let rc = ret_claim res g in
                if is_top rc || Hashtbl.mem res.r_busy_ret g then wide blk
                else if Hashtbl.mem res.r_rets_used g
                        || certify_ret_claim res g rc
                then begin
                  Hashtbl.replace res.r_rets_used g rc;
                  fin (rc, Some (push_fact cs
                         { fa_reg = reg; fa_ival = rc; fa_just = Jret g;
                           fa_deps = []; fa_valid = blk }))
                end
                else wide blk
            | Instr.Binop _ | Instr.Icmp _ | Instr.Cast _ | Instr.Select _ ->
                let ops = Instr.operands i.Instr.kind in
                let certified = List.map (fun v -> certify_value res cs v blk) ops in
                let derived = eval_def i (List.map fst certified) in
                if is_top derived then wide blk
                else
                  fin (derived, Some (push_fact cs
                         { fa_reg = reg; fa_ival = derived; fa_just = Jdef;
                           fa_deps = List.map snd certified; fa_valid = blk }))
            | _ -> wide blk)

(* Certified value of [reg] as seen at [at_block]: the def fact refined
   by every conditional guard on the dominator chain whose target has
   that guard edge as its unique predecessor (so edge dominance reduces
   to block dominance, which the checker can test locally). *)
and certify_use res cs reg at_block =
  match Hashtbl.find_opt cs.cs_use (reg, at_block) with
  | Some r -> r
  | None ->
      let f = cs.cs_fi.fi_func and cfg = cs.cs_fi.fi_cfg in
      let base = certify_def res cs reg in
      let rec idom_path b acc =
        match Cfg.idom cfg b with
        | None -> b :: acc
        | Some p -> idom_path p (b :: acc)
      in
      let r =
        List.fold_left
          (fun (cur, curidx) d ->
            match Cfg.predecessors cfg d with
            | [ p ] -> (
                match (Func.find_block f p).Func.term with
                | Instr.Br (cond, tl, el) when tl <> el && (d = tl || d = el) -> (
                    match resolve_cond cs.cs_fi.fi_defs cond (d = tl) 0 with
                    | None -> (cur, curidx)
                    | Some (op, a, b) ->
                        let try_side subj side (cur, curidx) =
                          match subj with
                          | Value.Reg (id, Ty.Int _, _) when id = reg ->
                              let other = if side = `Left then b else a in
                              let oiv, oidx = certify_value res cs other p in
                              let niv = meet_ival cur (refine op side oiv) in
                              if equal_ival niv cur then (cur, curidx)
                              else
                                let fidx = push_fact cs
                                    { fa_reg = reg; fa_ival = niv;
                                      fa_just = Jguard { jg_src = p; jg_dst = d };
                                      fa_deps = [ curidx; oidx ];
                                      fa_valid = d }
                                in
                                (niv, Some fidx)
                          | _ -> (cur, curidx)
                        in
                        (cur, curidx) |> try_side a `Left |> try_side b `Right)
                | _ -> (cur, curidx))
            | _ -> (cur, curidx))
          base (idom_path at_block [])
      in
      Hashtbl.replace cs.cs_use (reg, at_block) r;
      r

and certify_value res cs (v : Value.t) at_block =
  match v with
  | Value.Imm (Ty.Int _, n) -> (const n, None)
  | Value.Reg (id, Ty.Int _, _) -> certify_use res cs id at_block
  | _ -> (top, None)

(* Module-level parameter claim: every direct call site passes an
   argument provably inside [claim], and the function's address never
   escapes (so there are no other callers). *)
and certify_param_claim res fn k claim =
  Hashtbl.replace res.r_busy_param (fn, k) ();
  let sites = Option.value ~default:[] (Hashtbl.find_opt res.r_callsites fn) in
  let ok =
    sites <> []
    && List.for_all
         (fun (caller, cblock, (ci : Instr.t)) ->
           match (cstate_of res caller, ci.Instr.kind) with
           | Some ccs, Instr.Call (_, args) -> (
               match List.nth_opt args k with
               | Some arg ->
                   let aiv, _ = certify_value res ccs arg cblock in
                   subset aiv claim
               | None -> false)
           | _ -> false)
         sites
  in
  Hashtbl.remove res.r_busy_param (fn, k);
  ok

(* Module-level return claim: every [Ret (Some v)] of [g] is provably
   inside [claim]. *)
and certify_ret_claim res g claim =
  match cstate_of res g with
  | None -> false
  | Some gcs ->
      Hashtbl.replace res.r_busy_ret g ();
      let ok =
        List.for_all
          (fun (b : Func.block) ->
            (not (Cfg.is_reachable gcs.cs_fi.fi_cfg b.Func.label))
            ||
            match b.Func.term with
            | Instr.Ret (Some v) ->
                let riv, _ = certify_value res gcs v b.Func.label in
                subset riv claim
            | _ -> true)
          gcs.cs_fi.fi_func.Func.f_blocks
      in
      Hashtbl.remove res.r_busy_ret g;
      ok

(* ------------------------------------------------------------------ *)
(* Gep candidates and the certification sweep.                         *)
(* ------------------------------------------------------------------ *)

(* A gep stays inside its base object's registered extent when the
   leading index is 0 and every further index is within its array (or a
   valid struct field) — {!Sva_safety.Checkinsert.static_safe} decides
   the all-constant case; here we additionally allow register indexes
   into arrays, returning [(position, reg, array length)] for each. *)
let gep_candidate ctx (i : Instr.t) =
  match i.Instr.kind with
  | Instr.Gep (base, Value.Imm (_, 0L) :: rest) when rest <> [] -> (
      match Value.ty base with
      | Ty.Ptr pointee ->
          let rec descend ty pos idxs acc =
            match idxs with
            | [] -> if acc = [] then None else Some (List.rev acc)
            | idx :: tl -> (
                match (ty, idx) with
                | Ty.Array (e, n), Value.Imm (_, c)
                  when c >= 0L && c < Int64.of_int n ->
                    descend e (pos + 1) tl acc
                | Ty.Array (e, n), Value.Reg (id, Ty.Int _, _) when n > 0 ->
                    descend e (pos + 1) tl ((pos, id, n) :: acc)
                | Ty.Struct s, Value.Imm (_, c) -> (
                    match Ty.field_at ctx s (Int64.to_int c) with
                    | exception Not_found -> None
                    | _, fty -> descend fty (pos + 1) tl acc)
                | _ -> None)
          in
          descend pointee 1 rest []
      | _ -> None)
  | _ -> None

let gep_extents = gep_candidate

let certify_all res =
  List.iter
    (fun fn ->
      match cstate_of res fn with
      | None -> ()
      | Some cs ->
          Func.iter_instrs cs.cs_fi.fi_func (fun b i ->
              if Cfg.is_reachable cs.cs_fi.fi_cfg b.Func.label then
                match gep_candidate res.r_m.Irmod.m_ctx i with
                | None -> ()
                | Some vars ->
                    let idxs =
                      List.filter_map
                        (fun (pos, reg, n) ->
                          let iv, fo = certify_use res cs reg b.Func.label in
                          match fo with
                          | Some fidx
                            when subset iv (range 0L (Int64.of_int (n - 1))) ->
                              Some (pos, fidx)
                          | _ -> None)
                        vars
                    in
                    if List.length idxs = List.length vars then
                      Hashtbl.replace res.r_certified (fn, i.Instr.id)
                        (b.Func.label, idxs)))
    res.r_order

(* ------------------------------------------------------------------ *)
(* Producer-side validation: replay the checker's own rules and widen   *)
(* any fact that fails to [top], to a fixpoint.  Guarantees that every  *)
(* emitted certificate passes {!Sva_tyck.Rangecert} verbatim.           *)
(* ------------------------------------------------------------------ *)

let dep_ival arr = function
  | Some fidx when fidx >= 0 && fidx < Array.length arr ->
      arr.(fidx).fa_ival
  | _ -> top

let fact_ok res cs (fa : fact) =
  let arr = cs.cs_arr in
  let fi = cs.cs_fi in
  match fa.fa_just with
  | Jwide -> (
      match reg_width cs fa.fa_reg with
      | Some w -> subset (width_range w) fa.fa_ival
      | None -> false)
  | Jdef -> (
      match Hashtbl.find_opt fi.fi_defs fa.fa_reg with
      | None -> false
      | Some (_, i) ->
          let ops = Instr.operands i.Instr.kind in
          let ivs =
            List.map2
              (fun (v : Value.t) dep ->
                match v with
                | Value.Imm (Ty.Int _, n) -> const n
                | Value.Reg _ -> dep_ival arr dep
                | _ -> top)
              ops
              (if List.length fa.fa_deps = List.length ops then fa.fa_deps
               else List.map (fun _ -> None) ops)
          in
          subset (eval_def i ivs) fa.fa_ival)
  | Jphi -> (
      match Hashtbl.find_opt fi.fi_defs fa.fa_reg with
      | Some (_, { Instr.kind = Instr.Phi incoming; _ })
        when List.length incoming = List.length fa.fa_deps ->
          List.for_all2
            (fun (_, (v : Value.t)) dep ->
              match v with
              | Value.Imm (Ty.Int _, n) -> contains fa.fa_ival n
              | Value.Reg _ -> subset (dep_ival arr dep) fa.fa_ival
              | _ -> false)
            incoming fa.fa_deps
      | _ -> false)
  | Jguard { jg_src; jg_dst } -> (
      match
        (Func.find_block fi.fi_func jg_src).Func.term
      with
      | Instr.Br (cond, tl, el) when tl <> el && (jg_dst = tl || jg_dst = el)
        -> (
          match resolve_cond fi.fi_defs cond (jg_dst = tl) 0 with
          | None -> false
          | Some (op, a, b) -> (
              let base, odep =
                match fa.fa_deps with
                | [ d0; d1 ] -> (dep_ival arr d0, d1)
                | _ -> (top, None)
              in
              let constrain subj side =
                match subj with
                | Value.Reg (id, Ty.Int _, _) when id = fa.fa_reg ->
                    let other = if side = `Left then b else a in
                    let oiv =
                      match other with
                      | Value.Imm (Ty.Int _, n) -> const n
                      | Value.Reg _ -> dep_ival arr odep
                      | _ -> top
                    in
                    Some (refine op side oiv)
                | _ -> None
              in
              match (constrain a `Left, constrain b `Right) with
              | Some c, _ | None, Some c ->
                  subset (meet_ival base c) fa.fa_ival
              | None, None -> false))
      | _ -> false)
  | Jparam k ->
      fa.fa_reg = k
      && (match Hashtbl.find_opt res.r_params_used
                  (fi.fi_func.Func.f_name, k)
          with
         | Some claim -> subset claim fa.fa_ival
         | None -> false)
  | Jret g -> (
      match Hashtbl.find_opt res.r_rets_used g with
      | Some claim -> subset claim fa.fa_ival
      | None -> false)

(* Structural side conditions the producer establishes by construction
   (dep validity dominating the fact's block, matching registers); the
   trusted checker re-tests them, the validation pass only re-tests the
   interval arithmetic above. *)

let check_param_claim res fn k claim =
  let sites = Option.value ~default:[] (Hashtbl.find_opt res.r_callsites fn) in
  (not (res.r_eff_entry fn))
  && sites <> []
  && List.for_all
       (fun (caller, cblock, (ci : Instr.t)) ->
         match (cstate_of res caller, ci.Instr.kind) with
         | Some ccs, Instr.Call (_, args) -> (
             match List.nth_opt args k with
             | Some (Value.Imm (Ty.Int _, n)) -> contains claim n
             | Some (Value.Reg (id, Ty.Int _, _)) ->
                 Array.exists
                   (fun (fa : fact) ->
                     fa.fa_reg = id
                     && (not (is_top fa.fa_ival))
                     && subset fa.fa_ival claim
                     && Cfg.dominates ccs.cs_fi.fi_cfg fa.fa_valid cblock)
                   ccs.cs_arr
             | _ -> false)
         | _ -> false)
       sites

let check_ret_claim res g claim =
  match cstate_of res g with
  | None -> false
  | Some gcs ->
      List.for_all
        (fun (b : Func.block) ->
          (not (Cfg.is_reachable gcs.cs_fi.fi_cfg b.Func.label))
          ||
          match b.Func.term with
          | Instr.Ret (Some (Value.Imm (Ty.Int _, n))) -> contains claim n
          | Instr.Ret (Some (Value.Reg (id, Ty.Int _, _))) ->
              Array.exists
                (fun (fa : fact) ->
                  fa.fa_reg = id
                  && (not (is_top fa.fa_ival))
                  && subset fa.fa_ival claim
                  && Cfg.dominates gcs.cs_fi.fi_cfg fa.fa_valid b.Func.label)
                gcs.cs_arr
          | Instr.Ret (Some _) -> false
          | _ -> true)
        gcs.cs_fi.fi_func.Func.f_blocks

let validate res =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun fn ->
        match cstate_of res fn with
        | None -> ()
        | Some cs ->
            Array.iter
              (fun (fa : fact) ->
                if (not (is_top fa.fa_ival)) && not (fact_ok res cs fa)
                then begin
                  fa.fa_ival <- top;
                  changed := true
                end)
              cs.cs_arr)
      res.r_order;
    let bad_params =
      Hashtbl.fold
        (fun (fn, k) claim acc ->
          if check_param_claim res fn k claim then acc else (fn, k) :: acc)
        res.r_params_used []
    in
    List.iter
      (fun (fn, k) ->
        Hashtbl.remove res.r_params_used (fn, k);
        changed := true;
        match cstate_of res fn with
        | Some cs ->
            Array.iter
              (fun (fa : fact) ->
                if fa.fa_just = Jparam k then fa.fa_ival <- top)
              cs.cs_arr
        | None -> ())
      bad_params;
    let bad_rets =
      Hashtbl.fold
        (fun g claim acc ->
          if check_ret_claim res g claim then acc else g :: acc)
        res.r_rets_used []
    in
    List.iter
      (fun g ->
        Hashtbl.remove res.r_rets_used g;
        changed := true;
        List.iter
          (fun fn ->
            match cstate_of res fn with
            | Some cs ->
                Array.iter
                  (fun (fa : fact) ->
                    if fa.fa_just = Jret g then fa.fa_ival <- top)
                  cs.cs_arr
            | None -> ())
          res.r_order)
      bad_rets
  done;
  (* prune candidate certificates whose index facts no longer prove the
     in-extent ranges *)
  let stale =
    Hashtbl.fold
      (fun ((fn, gep) as key) (_blk, idxs) acc ->
        let ok =
          match cstate_of res fn with
          | None -> false
          | Some cs -> (
              match Hashtbl.find_opt cs.cs_fi.fi_defs gep with
              | None -> false
              | Some (_, i) -> (
                  match gep_candidate res.r_m.Irmod.m_ctx i with
                  | None -> false
                  | Some vars ->
                      List.length vars = List.length idxs
                      && List.for_all2
                           (fun (pos, _, n) (pos', fidx) ->
                             pos = pos'
                             && fidx < Array.length cs.cs_arr
                             && subset cs.cs_arr.(fidx).fa_ival
                                  (range 0L (Int64.of_int (n - 1))))
                           vars idxs))
        in
        if ok then acc else key :: acc)
      res.r_certified []
  in
  List.iter (Hashtbl.remove res.r_certified) stale

(* ------------------------------------------------------------------ *)
(* Driver.                                                             *)
(* ------------------------------------------------------------------ *)

let run ?(entries = fun _ -> true) (m : Irmod.t) (pa : Pointsto.result) =
  iters := 0;
  let cg = Callgraph.build m pa in
  let esc = escaped_fns m in
  let eff fn =
    entries fn || Hashtbl.mem esc fn
    ||
    match Irmod.find_func m fn with
    | Some f ->
        Func.has_attr f Func.Kernel_entry || f.Func.f_varargs
        || not (analyzed f)
    | None -> true
  in
  let funcs = List.filter analyzed m.Irmod.m_funcs in
  let names = List.map (fun (f : Func.t) -> f.Func.f_name) funcs in
  let pre = Hashtbl.create 64 in
  List.iter
    (fun (f : Func.t) ->
      Hashtbl.replace pre f.Func.f_name (f, Cfg.build f, defs_of f))
    funcs;
  let init fn =
    let f, _, _ = Hashtbl.find pre fn in
    let e = eff fn in
    let sp =
      Array.of_list
        (List.map
           (fun (_, ty) ->
             match ty with
             | Ty.Int w -> if e then width_range w else Bot
             | _ -> top)
           f.Func.f_params)
    in
    { sp_params = sp; sp_ret = Bot }
  in
  let equal_sum a b =
    equal_ival a.sp_ret b.sp_ret && a.sp_params = b.sp_params
  in
  let sums_t =
    Dataflow.Summaries.solve cg ~funcs:names ~init ~equal:equal_sum
      ~transfer:(fun ~get ~update fn ->
        let f, cfg, _ = Hashtbl.find pre fn in
        let me = get fn in
        let ret_of g =
          if Hashtbl.mem pre g then (get g).sp_ret else top
        in
        let entry = entry_env f me.sp_params in
        let headers = SS.of_list (List.map snd (Cfg.back_edges cfg)) in
        let r =
          Solver.solve ~entry ~widen:(widen_env headers)
            ~transfer:(transfer_block ret_of) f cfg
        in
        iters := !iters + r.Solver.iterations;
        let rv = ref Bot in
        List.iter
          (fun (b : Func.block) ->
            if Cfg.is_reachable cfg b.Func.label then begin
              let env =
                List.fold_left
                  (fun env (i : Instr.t) ->
                    (match i.Instr.kind with
                    | Instr.Call (Value.Fn (g, _), args)
                      when Hashtbl.mem pre g && not (eff g) ->
                        (* join the argument ranges into the callee's
                           parameter summary *)
                        let gf, _, _ = Hashtbl.find pre g in
                        let gs = get g in
                        let sp = Array.copy gs.sp_params in
                        let changed = ref false in
                        List.iteri
                          (fun k arg ->
                            if k < Array.length sp then
                              match List.nth gf.Func.f_params k with
                              | _, Ty.Int w ->
                                  let av =
                                    meet_ival (value_of env arg)
                                      (width_range w)
                                  in
                                  let nv = join_ival sp.(k) av in
                                  if not (equal_ival nv sp.(k)) then begin
                                    sp.(k) <- nv;
                                    changed := true
                                  end
                              | _ -> ())
                          args;
                        if !changed then update g { gs with sp_params = sp }
                    | _ -> ());
                    step ret_of env i)
                  (r.Solver.input b.Func.label)
                  b.Func.insns
              in
              match b.Func.term with
              | Instr.Ret (Some v) ->
                  let rw =
                    match f.Func.f_ret with
                    | Ty.Int w ->
                        meet_ival (value_of env v) (width_range w)
                    | _ -> top
                  in
                  rv := join_ival !rv rw
              | _ -> ()
            end)
          f.Func.f_blocks;
        let cur = get fn in
        let nret = join_ival cur.sp_ret !rv in
        if not (equal_ival nret cur.sp_ret) then
          update fn { cur with sp_ret = nret })
  in
  let sums = Hashtbl.create 64 in
  List.iter
    (fun fn -> Hashtbl.replace sums fn (Dataflow.Summaries.get sums_t fn))
    names;
  let ret_of g =
    match Hashtbl.find_opt sums g with Some s -> s.sp_ret | None -> top
  in
  let cstates = Hashtbl.create 64 in
  List.iter
    (fun fn ->
      let f, cfg, defs = Hashtbl.find pre fn in
      let sp = (Hashtbl.find sums fn).sp_params in
      let fi = analyze_func ret_of f cfg defs sp in
      Hashtbl.replace cstates fn
        {
          cs_fi = fi;
          cs_rev = [];
          cs_n = 0;
          cs_arr = [||];
          cs_def = Hashtbl.create 64;
          cs_use = Hashtbl.create 64;
        })
    names;
  let res =
    {
      r_m = m;
      r_entries = entries;
      r_eff_entry = eff;
      r_sums = sums;
      r_cstates = cstates;
      r_order = names;
      r_callsites = direct_callsites m;
      r_params_used = Hashtbl.create 16;
      r_rets_used = Hashtbl.create 16;
      r_certified = Hashtbl.create 64;
      r_taken = Hashtbl.create 64;
      r_certs = [];
      r_busy_param = Hashtbl.create 8;
      r_busy_ret = Hashtbl.create 8;
      r_iterations = 0;
    }
  in
  certify_all res;
  Hashtbl.iter
    (fun _ cs -> cs.cs_arr <- Array.of_list (List.rev cs.cs_rev))
    cstates;
  validate res;
  { res with r_iterations = !iters }

(* ------------------------------------------------------------------ *)
(* Queries.                                                            *)
(* ------------------------------------------------------------------ *)

let certifiable res ~fname (i : Instr.t) =
  Hashtbl.mem res.r_certified (fname, i.Instr.id)

(* Idempotently materialize the certificate for an elision the safety
   layer decided to take; returns whether the gep is certified. *)
let elide res ~fname (i : Instr.t) kind =
  match Hashtbl.find_opt res.r_certified (fname, i.Instr.id) with
  | None -> false
  | Some (blk, idxs) ->
      if not (Hashtbl.mem res.r_taken (fname, i.Instr.id, kind)) then begin
        Hashtbl.replace res.r_taken (fname, i.Instr.id, kind) ();
        res.r_certs <-
          {
            ce_func = fname;
            ce_block = blk;
            ce_gep = i.Instr.id;
            ce_kind = kind;
            ce_idx = idxs;
          }
          :: res.r_certs
      end;
      true

let bundle res =
  let facts = Hashtbl.create 16 in
  Hashtbl.iter
    (fun fn cs ->
      if Array.length cs.cs_arr > 0 then Hashtbl.replace facts fn cs.cs_arr)
    res.r_cstates;
  {
    cb_facts = facts;
    cb_params = res.r_params_used;
    cb_rets = res.r_rets_used;
    cb_certs = List.rev res.r_certs;
  }

let cert_counts res =
  List.fold_left
    (fun (b, l) c ->
      match c.ce_kind with Cbounds -> (b + 1, l) | Cls -> (b, l + 1))
    (0, 0) res.r_certs

let fact_count res =
  Hashtbl.fold (fun _ cs acc -> acc + Array.length cs.cs_arr) res.r_cstates 0

let iterations res = res.r_iterations
let entry_config res = res.r_entries

let value_at res ~fname ~block v =
  match cstate_of res fname with
  | None -> top
  | Some cs -> (
      match Hashtbl.find_opt cs.cs_fi.fi_input block with
      | Some env -> value_of env v
      | None -> top)

let plain_facts res ~fname =
  match cstate_of res fname with
  | None -> []
  | Some cs ->
      IM.fold
        (fun reg iv acc -> if is_top iv then acc else (reg, iv) :: acc)
        cs.cs_fi.fi_plain []
      |> List.rev

let func_summary res fn =
  match Hashtbl.find_opt res.r_sums fn with
  | Some s -> Some (Array.copy s.sp_params, s.sp_ret)
  | None -> None

let analyzed_funcs res = res.r_order

let just_to_string = function
  | Jwide -> "wide"
  | Jdef -> "def"
  | Jphi -> "phi"
  | Jguard { jg_src; jg_dst } -> Printf.sprintf "guard(%s->%s)" jg_src jg_dst
  | Jparam k -> Printf.sprintf "param(%d)" k
  | Jret g -> Printf.sprintf "ret(@%s)" g

let cert_kind_to_string = function Cbounds -> "bounds" | Cls -> "lscheck"

(* ------------------------------------------------------------------ *)
(* Self-test of the arithmetic kernel against Constfold.               *)
(* ------------------------------------------------------------------ *)

let selftest () =
  let checks = ref 0 in
  let fail fmt = Printf.ksprintf failwith fmt in
  let points =
    [
      Int64.min_int; Int64.add Int64.min_int 1L; -1000L; -129L; -128L;
      -2L; -1L; 0L; 1L; 2L; 7L; 63L; 127L; 128L; 255L; 1000L;
      Int64.sub Int64.max_int 1L; Int64.max_int;
    ]
  in
  let ivals =
    top :: List.concat_map
             (fun l ->
               [ Iv (Some l, None); Iv (None, Some l); const l;
                 (match norm (Some l) (Some (Int64.add l 9L)) with
                  | b -> b) ])
             [ -128L; -7L; -1L; 0L; 1L; 5L; 63L; 127L ]
  in
  let widths = [ 1; 8; 16; 32; 64 ] in
  let members w iv =
    List.filter
      (fun p -> Constfold.truncate_to_width w p = p && contains iv p)
      points
  in
  let binops : Instr.binop list =
    [ Instr.Add; Instr.Sub; Instr.Mul; Instr.Sdiv; Instr.Udiv; Instr.Srem;
      Instr.Urem; Instr.And; Instr.Or; Instr.Xor; Instr.Shl; Instr.Lshr;
      Instr.Ashr ]
  in
  List.iter
    (fun w ->
      List.iter
        (fun op ->
          List.iter
            (fun va ->
              List.iter
                (fun vb ->
                  let abs = eval_binop op w va vb in
                  List.iter
                    (fun a ->
                      List.iter
                        (fun b ->
                          incr checks;
                          match Constfold.eval_binop op w a b with
                          | None -> ()
                          | Some r ->
                              if not (contains abs r) then
                                fail
                                  "interval selftest: binop w=%d \
                                   %Ld,%Ld -> %Ld not in %s (from %s,%s)"
                                  w a b r (ival_to_string abs)
                                  (ival_to_string va) (ival_to_string vb))
                        (members w vb))
                    (members w va))
                ivals)
            ivals)
        binops)
    [ 8; 64 ];
  (* casts: canonical-register semantics replayed via Constfold *)
  List.iter
    (fun sw ->
      List.iter
        (fun dw ->
          List.iter
            (fun v ->
              List.iter
                (fun a ->
                  incr checks;
                  if dw >= sw then begin
                    let zr =
                      Constfold.truncate_to_width dw
                        (Constfold.zext_of_width sw a)
                    in
                    let zabs =
                      eval_cast Instr.Zext ~src:(Ty.Int sw)
                        ~dst:(Ty.Int dw) v
                    in
                    if not (contains zabs zr) then
                      fail "interval selftest: zext %d->%d %Ld" sw dw a;
                    let sabs =
                      eval_cast Instr.Sext ~src:(Ty.Int sw)
                        ~dst:(Ty.Int dw) v
                    in
                    if not (contains sabs a) then
                      fail "interval selftest: sext %d->%d %Ld" sw dw a
                  end
                  else begin
                    let tr = Constfold.truncate_to_width dw a in
                    let tabs =
                      eval_cast Instr.Trunc ~src:(Ty.Int sw)
                        ~dst:(Ty.Int dw) v
                    in
                    if not (contains tabs tr) then
                      fail "interval selftest: trunc %d->%d %Ld" sw dw a
                  end)
                (members sw v))
            ivals)
        widths)
    widths;
  (* branch refinement: a `op` b true implies a in refine(op,Left,B) *)
  let icmps : Instr.icmp list =
    [ Instr.Eq; Instr.Ne; Instr.Slt; Instr.Sle; Instr.Sgt; Instr.Sge;
      Instr.Ult; Instr.Ule; Instr.Ugt; Instr.Uge ]
  in
  List.iter
    (fun w ->
      List.iter
        (fun op ->
          List.iter
            (fun vb ->
              let cl = refine op `Left vb in
              let cr = refine op `Right vb in
              List.iter
                (fun b ->
                  List.iter
                    (fun a ->
                      if Constfold.truncate_to_width w a = a then begin
                        incr checks;
                        if Constfold.eval_icmp op w a b
                           && not (contains cl a) then
                          fail
                            "interval selftest: refine L %d %Ld %Ld vs %s"
                            w a b (ival_to_string vb);
                        incr checks;
                        if Constfold.eval_icmp op w b a
                           && not (contains cr a) then
                          fail
                            "interval selftest: refine R %d %Ld %Ld vs %s"
                            w a b (ival_to_string vb)
                      end)
                    points)
                (members w vb))
            ivals)
        icmps)
    [ 8; 64 ];
  (* lattice sanity on the sample set *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          incr checks;
          if not (subset a (join_ival a b) && subset b (join_ival a b)) then
            fail "interval selftest: join not an upper bound";
          if not (subset (meet_ival a b) a && subset (meet_ival a b) b) then
            fail "interval selftest: meet not a lower bound";
          let wd = widen_ival a b in
          if not (subset a wd && subset b wd) then
            fail "interval selftest: widen not an upper bound")
        ivals)
    ivals;
  !checks
