(* Interprocedural concurrency-safety analysis: must-hold locksets and
   interrupt masking over the kernel IR (the static groundwork for the
   SMP port — Section 6.2's interrupt machinery made checkable).

   The analysis is untrusted.  It classifies shared state with the
   unification points-to analysis (memory classes reachable from both an
   interrupt handler and a syscall handler), runs a forward must-
   dataflow whose lattice is interrupt-masked-bit x held-lock-set, made
   interprocedural by call-graph summaries keyed on each function's
   entry protection state, and reports:

   - [race]           an access pair with disjoint protection on shared
                      state, or a lock-free write to a lock-disciplined
                      global;
   - [deadlock]       a cycle in the lock-order graph;
   - [cli-imbalance]  a path returning with the interrupt mask changed;
   - [lock-imbalance] a path returning with the lockset changed;
   - [atomic-sleep]   a sleeping allocation while masked or holding a
                      spinlock (the interrupt-context rule of the PR-2
                      lint layer, extended to critical sections).

   Every obligation the analysis discharges is recorded as an atomicity
   certificate; {!Sva_tyck.Atomcert} re-verifies the bundle with purely
   local rules, sharing only the one-instruction transfer kernel
   ({!step}) and the call-effect summaries ({!effects}) with this
   producer — the same TCB split Rangecert uses for intervals. *)

open Sva_ir
module SS = Set.Make (String)

(* ---------- the protection lattice ---------- *)

type prot = { p_masked : bool; p_locks : SS.t }

type fact = Unreached | Known of prot

let unprotected = { p_masked = false; p_locks = SS.empty }

let prot_equal a b = a.p_masked = b.p_masked && SS.equal a.p_locks b.p_locks

(* Must-information meet: a merge point only guarantees what every
   incoming path guarantees. *)
let prot_join a b =
  {
    p_masked = a.p_masked && b.p_masked;
    p_locks = SS.inter a.p_locks b.p_locks;
  }

(* [prot_leq c p]: claim [c] is justified by fact [p]. *)
let prot_leq c p =
  ((not c.p_masked) || p.p_masked) && SS.subset c.p_locks p.p_locks

let fact_equal a b =
  match (a, b) with
  | Unreached, Unreached -> true
  | Known a, Known b -> prot_equal a b
  | _ -> false

let fact_join a b =
  match (a, b) with
  | Unreached, x | x, Unreached -> x
  | Known a, Known b -> Known (prot_join a b)

module L = struct
  type t = fact

  let bottom = Unreached
  let equal = fact_equal
  let join = fact_join
end

module Solver = Dataflow.Make (L)

let prot_to_string p =
  let locks =
    if SS.is_empty p.p_locks then "-"
    else String.concat "," (SS.elements p.p_locks)
  in
  Printf.sprintf "{masked=%b locks=%s}" p.p_masked locks

(* ---------- configuration ---------- *)

type config = {
  ls_interrupt_register : string;
  ls_syscall_register : string;
      (** the SVM syscall registration intrinsic; scanned syntactically
          in addition to the points-to syscall table, which cannot see
          handlers that were cast before registration *)
  ls_sleeping : string list;
      (** functions that may sleep (block), per the lint layer *)
  ls_extra_roots : string list;
      (** additional unmasked entry points (the syscall dispatcher) *)
}

let default_config =
  {
    ls_interrupt_register = "sva_register_interrupt";
    ls_syscall_register = "sva_register_syscall";
    ls_sleeping = [ "kmalloc"; "vmalloc"; "kmem_cache_alloc" ];
    ls_extra_roots = [ "kernel_syscall_entry" ];
  }

let cli_name = "sva_cli"
let sti_name = "sva_sti"
let acquire_name = "sva_lock_acquire"
let release_name = "sva_lock_release"
let syscall_invoke_name = "sva_syscall"

(* ---------- shared syntactic kernel (also used by Atomcert) ---------- *)

let defs_of (f : Func.t) =
  let t = Hashtbl.create 64 in
  Func.iter_instrs f (fun _ i -> Hashtbl.replace t i.Instr.id i);
  t

(* The global a pointer value is rooted at, looking through casts and
   geps within the function.  Lock identities and direct global accesses
   both resolve this way; values flowing through memory or calls are
   deliberately not chased (those accesses are classified by the
   points-to node of the object instead, and a lock word's address is
   never laundered like that in the kernel sources). *)
let rec root_global defs (v : Value.t) =
  match v with
  | Value.Global (n, _) -> Some n
  | Value.Reg (id, _, _) -> (
      match Hashtbl.find_opt defs id with
      | Some (i : Instr.t) -> (
          match i.Instr.kind with
          | Instr.Cast (_, v', _) -> root_global defs v'
          | Instr.Gep (base, _) -> root_global defs base
          | _ -> None)
      | None -> None)
  | _ -> None

let lock_operand defs args =
  match args with a :: _ -> root_global defs a | [] -> None

(* Call-effect summaries: what a callee {e may} do to the caller's
   protection state.  May-information over-approximates, so applying it
   to a must-fact is sound.  Bodyless externs are SVM builtins and never
   touch interrupt state (the one axiom of this layer); indirect calls
   and internal syscalls clobber everything. *)

type eff = { e_may_sti : bool; e_release_any : bool; e_released : SS.t }

let eff_id = { e_may_sti = false; e_release_any = false; e_released = SS.empty }
let eff_clobber = { e_may_sti = true; e_release_any = true; e_released = SS.empty }

let eff_equal a b =
  a.e_may_sti = b.e_may_sti
  && a.e_release_any = b.e_release_any
  && SS.equal a.e_released b.e_released

let eff_union a b =
  {
    e_may_sti = a.e_may_sti || b.e_may_sti;
    e_release_any = a.e_release_any || b.e_release_any;
    e_released = SS.union a.e_released b.e_released;
  }

let apply_eff e p =
  {
    p_masked = p.p_masked && not e.e_may_sti;
    p_locks =
      (if e.e_release_any then SS.empty else SS.diff p.p_locks e.e_released);
  }

(* Fixpoint over direct calls; monotone in a finite lattice.  Every
   function with a body is scanned (including [Noanalyze] ones — the
   points-to analysis skips those, but a syntactic may-scan costs
   nothing and keeps the axiom confined to true externs). *)
let effects (m : Irmod.t) =
  let tbl : (string, eff) Hashtbl.t = Hashtbl.create 64 in
  let bodied =
    List.filter (fun (f : Func.t) -> f.Func.f_blocks <> []) m.Irmod.m_funcs
  in
  List.iter (fun (f : Func.t) -> Hashtbl.replace tbl f.Func.f_name eff_id) bodied;
  let get n = Option.value (Hashtbl.find_opt tbl n) ~default:eff_id in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Func.t) ->
        let defs = defs_of f in
        let e = ref eff_id in
        Func.iter_instrs f (fun _ i ->
            match i.Instr.kind with
            | Instr.Intrinsic (n, _) when n = sti_name ->
                e := { !e with e_may_sti = true }
            | Instr.Intrinsic (n, args) when n = release_name -> (
                match lock_operand defs args with
                | Some l -> e := { !e with e_released = SS.add l !e.e_released }
                | None -> e := { !e with e_release_any = true })
            | Instr.Intrinsic (n, _) when n = syscall_invoke_name ->
                e := eff_union !e eff_clobber
            | Instr.Call (Value.Fn (n, _), _) -> e := eff_union !e (get n)
            | Instr.Call (_, _) -> e := eff_union !e eff_clobber
            | _ -> ());
        if not (eff_equal !e (get f.Func.f_name)) then begin
          Hashtbl.replace tbl f.Func.f_name !e;
          changed := true
        end)
      bodied
  done;
  tbl

let eff_of effs n = Option.value (Hashtbl.find_opt effs n) ~default:eff_id

(* The one-instruction transfer function — the kernel shared with the
   trusted checker.  Purely local: the only context is the per-function
   defs table (lock-operand resolution) and the may-effect summaries. *)
let step ~defs ~effs fact (i : Instr.t) =
  match fact with
  | Unreached -> Unreached
  | Known p -> (
      match i.Instr.kind with
      | Instr.Intrinsic (n, _) when n = cli_name ->
          Known { p with p_masked = true }
      | Instr.Intrinsic (n, _) when n = sti_name ->
          Known { p with p_masked = false }
      | Instr.Intrinsic (n, args) when n = acquire_name -> (
          match lock_operand defs args with
          | Some l -> Known { p with p_locks = SS.add l p.p_locks }
          | None -> fact (* unknown lock adds no must-information *))
      | Instr.Intrinsic (n, args) when n = release_name -> (
          match lock_operand defs args with
          | Some l -> Known { p with p_locks = SS.remove l p.p_locks }
          | None -> Known { p with p_locks = SS.empty })
      | Instr.Intrinsic (n, _) when n = syscall_invoke_name ->
          Known (apply_eff eff_clobber p)
      | Instr.Call (Value.Fn (n, _), _) -> Known (apply_eff (eff_of effs n) p)
      | Instr.Call (_, _) -> Known (apply_eff eff_clobber p)
      | _ -> fact)

let block_transfer ~defs ~effs (b : Func.block) fact =
  List.fold_left (fun fct i -> step ~defs ~effs fct i) fact b.Func.insns

(* ---------- findings ---------- *)

type finding = {
  lf_checker : string;
  lf_func : string;
  lf_instr : int option;
  lf_message : string;
}

let finding_compare a b =
  compare
    (a.lf_checker, a.lf_func, a.lf_instr, a.lf_message)
    (b.lf_checker, b.lf_func, b.lf_instr, b.lf_message)

let render_finding f =
  match f.lf_instr with
  | Some id -> Printf.sprintf "%s: %s: %%%d: %s" f.lf_checker f.lf_func id f.lf_message
  | None -> Printf.sprintf "%s: %s: %s" f.lf_checker f.lf_func f.lf_message

(* ---------- certificates ---------- *)

type fcert = {
  fc_func : string;
  fc_entry : prot;  (** claimed entry protection *)
  fc_blocks : (string * fact) list;  (** claimed fact at each block entry *)
}

type acert = {
  ac_func : string;
  ac_instr : int;  (** the access instruction *)
  ac_global : string;  (** root global of the address *)
  ac_prot : prot;  (** claimed protection at the access *)
}

type bundle = { cb_fcerts : fcert list; cb_acerts : acert list }

(* ---------- the analysis ---------- *)

type access = {
  ga_func : string;
  ga_instr : int;
  ga_global : string;
  ga_key : string;  (** grouping key: the accessed global's name *)
  ga_write : bool;
  ga_prot : prot;
  ga_irq : bool;  (** in code reachable from an interrupt handler *)
  ga_sys : bool;  (** in code reachable from a syscall handler *)
}

type result = {
  r_findings : finding list;
  r_bundle : bundle;
  r_entries : (string * prot) list;  (** root entry points and their prot *)
  r_shared : int;  (** shared memory classes (irq- and syscall-reachable) *)
  r_accesses : int;  (** classified direct global accesses in the universe *)
  r_lock_edges : (string * string) list;
  r_funcs : int;  (** functions analyzed *)
  r_iterations : int;  (** dataflow block visits *)
}

let findings r = r.r_findings
let bundle r = r.r_bundle
let entry_config r fn = List.assoc_opt fn r.r_entries
let shared_count r = r.r_shared
let access_count r = r.r_accesses
let cert_count r = List.length r.r_bundle.cb_acerts
let fact_count r =
  List.fold_left (fun n fc -> n + List.length fc.fc_blocks) 0 r.r_bundle.cb_fcerts
let lock_edges r = r.r_lock_edges
let funcs_analyzed r = r.r_funcs
let iterations r = r.r_iterations

let count_findings r checker =
  List.length (List.filter (fun f -> f.lf_checker = checker) r.r_findings)

let analyzed_funcs (m : Irmod.t) =
  List.filter
    (fun (f : Func.t) ->
      (not (Func.has_attr f Func.Noanalyze)) && f.Func.f_blocks <> [])
    m.Irmod.m_funcs

(* Handlers passed to the interrupt-registration operation, as in the
   lint layer's interrupt-context checker. *)
(* A function-valued operand, looking through casts: a declared
   registration prototype ([void *fn]) makes the frontend bitcast the
   handler before the call. *)
let rec fn_operand defs (v : Value.t) =
  match v with
  | Value.Fn (n, _) -> Some n
  | Value.Reg (id, _, _) -> (
      match Hashtbl.find_opt defs id with
      | Some (i : Instr.t) -> (
          match i.Instr.kind with
          | Instr.Cast (_, v', _) -> fn_operand defs v'
          | _ -> None)
      | None -> None)
  | _ -> None

let registered_handlers register_name (m : Irmod.t) =
  let handlers = ref SS.empty in
  List.iter
    (fun (f : Func.t) ->
      let defs = defs_of f in
      Func.iter_instrs f (fun _ i ->
          let args =
            match i.Instr.kind with
            | Instr.Call (Value.Fn (n, _), args) when n = register_name -> args
            | Instr.Intrinsic (n, args) when n = register_name -> args
            | _ -> []
          in
          List.iter
            (fun a ->
              match fn_operand defs a with
              | Some h -> handlers := SS.add h !handlers
              | None -> ())
            args))
    m.Irmod.m_funcs;
  SS.elements !handlers

let interrupt_handlers config m =
  registered_handlers config.ls_interrupt_register m

let run ?(config = default_config) (m : Irmod.t) (pa : Pointsto.result) =
  let cg = Callgraph.build m pa in
  let effs = effects m in
  let analyzed = analyzed_funcs m in
  let analyzed_names = List.map (fun (f : Func.t) -> f.Func.f_name) analyzed in
  let analyzed_set = SS.of_list analyzed_names in
  let find_analyzed n =
    if SS.mem n analyzed_set then Irmod.find_func m n else None
  in
  let defs_tbl = Hashtbl.create 64 in
  let defs_for (f : Func.t) =
    match Hashtbl.find_opt defs_tbl f.Func.f_name with
    | Some d -> d
    | None ->
        let d = defs_of f in
        Hashtbl.replace defs_tbl f.Func.f_name d;
        d
  in
  let cfg_tbl = Hashtbl.create 64 in
  let cfg_for (f : Func.t) =
    match Hashtbl.find_opt cfg_tbl f.Func.f_name with
    | Some c -> c
    | None ->
        let c = Cfg.build f in
        Hashtbl.replace cfg_tbl f.Func.f_name c;
        c
  in
  (* --- entry points and their protection --- *)
  let irq_roots =
    List.filter (fun n -> SS.mem n analyzed_set) (interrupt_handlers config m)
  in
  let sys_roots =
    List.sort_uniq compare
      (List.filter
         (fun n -> SS.mem n analyzed_set)
         (List.map snd (Pointsto.syscall_table pa)
         @ registered_handlers config.ls_syscall_register m
         @ config.ls_extra_roots))
  in
  let kernel_entries =
    List.filter_map
      (fun (f : Func.t) ->
        if Func.has_attr f Func.Kernel_entry then Some f.Func.f_name else None)
      analyzed
  in
  let irq_root_set = SS.of_list irq_roots in
  let root_prot n =
    let is_irq = SS.mem n irq_root_set in
    let is_sys = List.mem n sys_roots || List.mem n kernel_entries in
    if is_irq && not is_sys then Some { unprotected with p_masked = true }
    else if is_sys then Some unprotected
    else None
  in
  let entries =
    List.filter_map
      (fun n -> Option.map (fun p -> (n, p)) (root_prot n))
      analyzed_names
  in
  (* --- interprocedural entry-protection fixpoint --- *)
  let iterations = ref 0 in
  let call_targets fname (i : Instr.t) =
    match i.Instr.kind with
    | Instr.Call (Value.Fn (n, _), _) -> [ n ]
    | Instr.Call (_, _) -> Pointsto.callsite_targets pa ~fname i.Instr.id
    | _ -> []
  in
  let init fn =
    match root_prot fn with Some p -> Known p | None -> Unreached
  in
  let solve_one (f : Func.t) entry_prot =
    let sol =
      Solver.solve ~entry:(Known entry_prot)
        ~transfer:(block_transfer ~defs:(defs_for f) ~effs)
        f (cfg_for f)
    in
    iterations := !iterations + sol.Solver.iterations;
    sol
  in
  let entry_facts =
    Dataflow.Summaries.solve cg ~funcs:analyzed_names ~init ~equal:fact_equal
      ~transfer:(fun ~get ~update fn ->
        match (find_analyzed fn, get fn) with
        | Some f, Known entry_prot ->
            let defs = defs_for f in
            let sol = solve_one f entry_prot in
            List.iter
              (fun (b : Func.block) ->
                ignore
                  (List.fold_left
                     (fun fct (i : Instr.t) ->
                       (match fct with
                       | Known _ ->
                           List.iter
                             (fun t ->
                               if SS.mem t analyzed_set then
                                 update t (fact_join (get t) fct))
                             (call_targets fn i)
                       | Unreached -> ());
                       step ~defs ~effs fct i)
                     (sol.Solver.input b.Func.label)
                     b.Func.insns))
              f.Func.f_blocks
        | _ -> ())
  in
  let entry_of fn =
    try Dataflow.Summaries.get entry_facts fn with Not_found -> Unreached
  in
  (* --- the reachable-side universe --- *)
  let irq_side = SS.of_list (Callgraph.reachable_from cg irq_roots) in
  let sys_side = SS.of_list (Callgraph.reachable_from cg sys_roots) in
  (* --- final per-function pass: accesses, edges, local findings --- *)
  let accesses = ref [] in
  let lock_sites = ref [] in
  (* (l1, l2, func): l2 acquired while l1 held *)
  let findings = ref [] in
  let add_finding ?instr checker func message =
    findings :=
      { lf_checker = checker; lf_func = func; lf_instr = instr; lf_message = message }
      :: !findings
  in
  let fcerts = ref [] in
  List.iter
    (fun (f : Func.t) ->
      let fn = f.Func.f_name in
      match entry_of fn with
      | Unreached -> ()
      | Known entry_prot ->
          let defs = defs_for f in
          let sol = solve_one f entry_prot in
          let in_irq = SS.mem fn irq_side and in_sys = SS.mem fn sys_side in
          let in_universe = in_irq || in_sys in
          List.iter
            (fun (b : Func.block) ->
              let record fct (i : Instr.t) =
                match fct with
                | Unreached -> ()
                | Known p -> (
                    (* classified direct global accesses *)
                    let addr_of =
                      match i.Instr.kind with
                      | Instr.Load a -> Some (a, false)
                      | Instr.Store (_, a) -> Some (a, true)
                      | _ -> None
                    in
                    (match addr_of with
                    | Some (a, write) when in_universe -> (
                        match root_global defs a with
                        | Some g ->
                            (* Grouping is by global name, not points-to
                               node: the unification analysis merges every
                               global that flows through a shared copy
                               routine into one node, which would smear
                               one table's lock discipline across
                               unrelated state.  The points-to result
                               still scopes the universe (which handlers
                               reach which functions). *)
                            let key = "name:" ^ g in
                            accesses :=
                              {
                                ga_func = fn;
                                ga_instr = i.Instr.id;
                                ga_global = g;
                                ga_key = key;
                                ga_write = write;
                                ga_prot = p;
                                ga_irq = in_irq;
                                ga_sys = in_sys;
                              }
                              :: !accesses
                        | None -> ())
                    | _ -> ());
                    (* lock-order edges *)
                    (match i.Instr.kind with
                    | Instr.Intrinsic (n, args) when n = acquire_name -> (
                        match lock_operand defs args with
                        | Some l2 ->
                            SS.iter
                              (fun l1 -> lock_sites := (l1, l2, fn) :: !lock_sites)
                              p.p_locks
                        | None -> ())
                    | _ -> ());
                    (* sleeping while atomic *)
                    match i.Instr.kind with
                    | Instr.Call (Value.Fn (n, _), _)
                      when List.mem n config.ls_sleeping
                           && (p.p_masked || not (SS.is_empty p.p_locks)) ->
                        add_finding ~instr:i.Instr.id "atomic-sleep" fn
                          (Printf.sprintf
                             "call to sleeping %s under %s" n
                             (prot_to_string p))
                    | _ -> ())
              in
              ignore
                (List.fold_left
                   (fun fct i ->
                     record fct i;
                     step ~defs ~effs fct i)
                   (sol.Solver.input b.Func.label)
                   b.Func.insns);
              (* return-path balance *)
              match b.Func.term with
              | Instr.Ret _ -> (
                  match sol.Solver.output b.Func.label with
                  | Unreached -> ()
                  | Known exit_p ->
                      if exit_p.p_masked <> entry_prot.p_masked then
                        add_finding "cli-imbalance" fn
                          (Printf.sprintf
                             "returns with interrupts %s (entered %s)"
                             (if exit_p.p_masked then "masked" else "unmasked")
                             (if entry_prot.p_masked then "masked"
                              else "unmasked"));
                      if not (SS.equal exit_p.p_locks entry_prot.p_locks) then
                        add_finding "lock-imbalance" fn
                          (Printf.sprintf "returns with lockset %s (entered %s)"
                             (prot_to_string { exit_p with p_masked = false })
                             (prot_to_string
                                { entry_prot with p_masked = false })))
              | _ -> ())
            f.Func.f_blocks;
          fcerts :=
            {
              fc_func = fn;
              fc_entry = entry_prot;
              fc_blocks =
                List.map
                  (fun (b : Func.block) ->
                    (b.Func.label, sol.Solver.input b.Func.label))
                  f.Func.f_blocks;
            }
            :: !fcerts)
    analyzed;
  let accesses = List.rev !accesses in
  (* --- shared-state classification and the race rules --- *)
  let groups : (string, access list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun a ->
      let cur = Option.value (Hashtbl.find_opt groups a.ga_key) ~default:[] in
      Hashtbl.replace groups a.ga_key (a :: cur))
    accesses;
  let acerts = ref [] in
  let cert_seen = Hashtbl.create 64 in
  let add_cert a =
    let k = (a.ga_func, a.ga_instr) in
    if not (Hashtbl.mem cert_seen k) then begin
      Hashtbl.replace cert_seen k ();
      acerts :=
        {
          ac_func = a.ga_func;
          ac_instr = a.ga_instr;
          ac_global = a.ga_global;
          ac_prot = a.ga_prot;
        }
        :: !acerts
    end
  in
  let shared = ref 0 in
  Hashtbl.iter
    (fun _key group ->
      let group = List.rev group in
      let irq_accs = List.filter (fun a -> a.ga_irq) group in
      let sys_accs = List.filter (fun a -> a.ga_sys) group in
      (* Rule A: interrupt-vs-syscall atomicity.  A pair containing a
         write is safe iff the syscall side masks interrupts or both
         sides hold a common lock. *)
      if irq_accs <> [] && sys_accs <> [] then begin
        incr shared;
        List.iter
          (fun sa ->
            let unsafe_against ia =
              (ia.ga_write || sa.ga_write)
              && (not sa.ga_prot.p_masked)
              && SS.is_empty (SS.inter sa.ga_prot.p_locks ia.ga_prot.p_locks)
            in
            match List.find_opt unsafe_against irq_accs with
            | Some ia ->
                add_finding ~instr:sa.ga_instr "race" sa.ga_func
                  (Printf.sprintf
                     "access to %s races interrupt-side access in %s \
                      (protection %s)"
                     sa.ga_global ia.ga_func
                     (prot_to_string sa.ga_prot))
            | None -> add_cert sa)
          sys_accs;
        List.iter (fun ia -> if not ia.ga_sys then add_cert ia) irq_accs
      end;
      (* Rule B: lock discipline.  Once any access to the class holds a
         lock, every write must hold a lock (or mask). *)
      if List.exists (fun a -> not (SS.is_empty a.ga_prot.p_locks)) group then
        List.iter
          (fun a ->
            if a.ga_write then
              if SS.is_empty a.ga_prot.p_locks && not a.ga_prot.p_masked then
                add_finding ~instr:a.ga_instr "race" a.ga_func
                  (Printf.sprintf
                     "write to lock-disciplined %s without holding a lock"
                     a.ga_global)
              else add_cert a)
          group)
    groups;
  (* --- lock-order graph and deadlock cycles --- *)
  let edges =
    List.sort_uniq compare
      (List.map (fun (l1, l2, _) -> (l1, l2)) !lock_sites)
  in
  let adj l =
    List.filter_map (fun (a, b) -> if a = l then Some b else None) edges
  in
  let reaches src dst =
    let seen = Hashtbl.create 8 in
    let rec go n =
      n = dst
      || (not (Hashtbl.mem seen n))
         && begin
              Hashtbl.replace seen n ();
              List.exists go (adj n)
            end
    in
    go src
  in
  List.iter
    (fun (l1, l2, fn) ->
      if reaches l2 l1 then
        add_finding "deadlock" fn
          (Printf.sprintf "lock-order cycle: holds %s while acquiring %s" l1 l2))
    (List.sort_uniq compare !lock_sites);
  {
    r_findings = List.sort_uniq finding_compare !findings;
    r_bundle =
      {
        cb_fcerts =
          List.sort (fun a b -> compare a.fc_func b.fc_func) !fcerts;
        cb_acerts =
          List.sort
            (fun a b ->
              compare (a.ac_func, a.ac_instr) (b.ac_func, b.ac_instr))
            !acerts;
      };
    r_entries = entries;
    r_shared = !shared;
    r_accesses = List.length accesses;
    r_lock_edges = edges;
    r_funcs = List.length !fcerts;
    r_iterations = !iterations;
  }
