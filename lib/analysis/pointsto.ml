open Sva_ir

type flag = Heap | Stack | Global | Unknown | Funcs | Userspace | Bios

let flag_bit = function
  | Heap -> 1
  | Stack -> 2
  | Global -> 4
  | Unknown -> 8
  | Funcs -> 16
  | Userspace -> 32
  | Bios -> 64

type node = {
  nid : int;
  mutable parent : node option;
  mutable rank : int;
  mutable nflags : int;
  mutable nty : Ty.t option;
  mutable collapsed : bool;
  mutable succ : node option;
  mutable funcs : string list;
  mutable globset : string list;
  mutable incomplete : bool;
  mutable extern_seed : bool;
}

type access_kind = Acc_load | Acc_store | Acc_struct_index | Acc_array_index

type access = {
  acc_func : string;
  acc_instr : int;
  acc_kind : access_kind;
  acc_node : node;
}

type alloc_site = {
  al_func : string;
  al_instr : int;
  al_alloc : string;
  al_node : node;
  al_pool_node : node option;
  al_size_class : int option;
}

type escape_site = {
  es_func : string;
  es_instr : int;
  es_reason : string;
  es_node : node;
}

type config = {
  allocators : Allocdecl.t list;
  copy_functions : string list;
  known_externs : string list;
  user_copy_functions : string list;
  syscall_register : string option;
  syscall_invoke : string option;
  track_int_ptrs : bool;
  null_small_int_casts : bool;
  userspace_valid : bool;
  externs_complete : bool;
}

let default_config =
  {
    allocators = [];
    copy_functions = [];
    known_externs = [ "memset"; "strlen"; "strcmp"; "memcmp" ];
    user_copy_functions = [];
    syscall_register = None;
    syscall_invoke = None;
    track_int_ptrs = true;
    null_small_int_casts = true;
    userspace_valid = false;
    externs_complete = false;
  }

type key = Kreg of string * int | Kglobal of string | Kfunc of string | Kret of string

(* An indirect call site awaiting resolution against the function set of its
   callee node. *)
type indirect_site = {
  is_func : string;
  is_instr : int;
  is_callee : node;
  is_args : Value.t list;
  is_result_key : key option;
  mutable is_applied : string list;  (* callees already unified *)
}

type result = {
  cfg : config;
  irmod : Irmod.t;
  mutable next_id : int;
  mutable recording : bool;
      (* record accesses/allocs/frees/indirect sites (first transfer pass
         only; later fixpoint passes just add unification constraints) *)
  env : (key, node) Hashtbl.t;
  mutable accs : access list;
  mutable allocs : alloc_site list;
  mutable frees : (string * int * node) list;
  mutable indirects : indirect_site list;
  syscalls : (int, string) Hashtbl.t;
  interior : (string * int, unit) Hashtbl.t;
      (* registers holding mid-object (field) pointers: their loads/stores
         do not contribute to the node's homogeneous type *)
  escapes : (string * int * int, string * node) Hashtbl.t;
      (* escape-frontier evidence, keyed (function, instr, operand slot;
         -1 = result).  Recorded on every pass (keyed replacement is
         idempotent) so the last fixpoint sweep leaves records that match
         the final partitions — integer operands may only join a pointer
         partition after the first pass. *)
}

(* ---------- union-find ---------- *)

(* Bumped on every node creation and every effective union: the analysis
   driver iterates the transfer pass until this stabilizes (integer
   tracking makes a single pass order-dependent). *)
let generation = ref 0

let rec find n =
  match n.parent with
  | None -> n
  | Some p ->
      let r = find p in
      n.parent <- Some r;
      r

let union_str a b = List.sort_uniq compare (List.rev_append a b)

let reduce_ty = function Ty.Array (e, _) -> e | t -> t

let set_flag n f =
  let n = find n in
  n.nflags <- n.nflags lor flag_bit f

let collapse n =
  let n = find n in
  n.collapsed <- true;
  n.nty <- None

(* Record that objects of (reduced) type [ty] inhabit node [n]; conflicting
   types collapse the node (destroying type homogeneity). *)
let add_ty n ty =
  let n = find n in
  if not n.collapsed then
    let ty = reduce_ty ty in
    match n.nty with
    | None -> n.nty <- Some ty
    | Some t when Ty.equal t ty -> ()
    | Some _ -> collapse n

let rec unify a b =
  let a = find a and b = find b in
  if a != b then begin
    incr generation;
    let root, child = if a.rank >= b.rank then (a, b) else (b, a) in
    if root.rank = child.rank then root.rank <- root.rank + 1;
    child.parent <- Some root;
    root.nflags <- root.nflags lor child.nflags;
    root.funcs <- union_str root.funcs child.funcs;
    root.globset <- union_str root.globset child.globset;
    root.incomplete <- root.incomplete || child.incomplete;
    root.extern_seed <- root.extern_seed || child.extern_seed;
    (if root.collapsed || child.collapsed then collapse root
     else
       match (root.nty, child.nty) with
       | None, t -> root.nty <- t
       | _, None -> ()
       | Some t1, Some t2 ->
           if not (Ty.equal t1 t2) then collapse root);
    let s1 = root.succ and s2 = child.succ in
    child.succ <- None;
    match (s1, s2) with
    | Some x, Some y -> unify x y
    | None, (Some _ as s) -> root.succ <- s
    | _, None -> ()
  end

(* ---------- state helpers ---------- *)

let fresh st =
  incr generation;
  let n =
    {
      nid = st.next_id;
      parent = None;
      rank = 0;
      nflags = 0;
      nty = None;
      collapsed = false;
      succ = None;
      funcs = [];
      globset = [];
      incomplete = false;
      extern_seed = false;
    }
  in
  st.next_id <- st.next_id + 1;
  n

let key_node st key =
  match Hashtbl.find_opt st.env key with
  | Some n -> find n
  | None ->
      let n = fresh st in
      (match key with
      | Kglobal g -> (
          n.nflags <- n.nflags lor flag_bit Global;
          n.globset <- [ g ];
          match Irmod.find_global st.irmod g with
          | Some gl -> add_ty n gl.Irmod.g_ty
          | None -> ())
      | Kfunc f ->
          n.nflags <- n.nflags lor flag_bit Funcs;
          n.funcs <- [ f ]
      | Kreg _ | Kret _ -> ());
      Hashtbl.replace st.env key n;
      n

let tracked_ty st (ty : Ty.t) =
  match ty with
  | Ty.Ptr _ -> true
  | Ty.Int 64 -> st.cfg.track_int_ptrs
  | _ -> false

(* The node a pointer value targets; creates the node on demand. *)
let rec node_of st ~fname (v : Value.t) : node option =
  match v with
  | Value.Reg (id, ty, _) ->
      if tracked_ty st ty then Some (key_node st (Kreg (fname, id))) else None
  | Value.Global (g, _) -> Some (key_node st (Kglobal g))
  | Value.Fn (f, _) -> Some (key_node st (Kfunc f))
  | Value.Null _ | Value.Undef _ | Value.Fimm _ -> None
  | Value.Imm _ -> None

(* Like node_of but never creates nodes for integer registers: a plain
   integer only aliases a partition when pointer data already flowed into
   it. *)
and node_of_int st ~fname (v : Value.t) : node option =
  match v with
  | Value.Reg (id, Ty.Int 64, _) -> (
      match Hashtbl.find_opt st.env (Kreg (fname, id)) with
      | Some n -> Some (find n)
      | None -> None)
  | Value.Reg (_, Ty.Ptr _, _) | Value.Global _ | Value.Fn _ ->
      node_of st ~fname v
  | _ -> None

let deref st n =
  let n = find n in
  match n.succ with
  | Some s -> find s
  | None ->
      let s = fresh st in
      n.succ <- Some s;
      s

let mark_extern_exposed st ~fname ~instr ~slot ~reason n =
  let n = find n in
  n.extern_seed <- true;
  Hashtbl.replace st.escapes (fname, instr, slot) (reason, n)

let is_interior st fname (v : Value.t) =
  match v with
  | Value.Reg (id, _, _) -> Hashtbl.mem st.interior (fname, id)
  | _ -> false

let set_interior st fname (i : Instr.t) =
  Hashtbl.replace st.interior (fname, i.Instr.id) ()

(* Does this gep descend into a struct field?  Array steps keep the
   result a whole-object (element) pointer. *)
let gep_enters_struct _ctx (base_ty : Ty.t) idxs =
  match base_ty with
  | Ty.Ptr pointee ->
      let rec descend ty = function
        | [] -> false
        | idx :: rest -> (
            match ty with
            | Ty.Array (e, _) -> descend e rest
            | Ty.Struct _ ->
                (* indexing a struct field: the result is interior *)
                ignore idx;
                true
            | _ -> true)
      in
      (match idxs with
      | [] -> false
      | _first :: rest -> (
          match rest with
          | [] -> false (* pure pointer arithmetic *)
          | _ -> (
              match pointee with
              | Ty.Struct _ -> true (* [0, field] into a struct *)
              | _ -> descend pointee rest)))
  | _ -> false

let record_access st ~fname ~instr kind n =
  if st.recording then
    st.accs <-
      { acc_func = fname; acc_instr = instr; acc_kind = kind; acc_node = n }
      :: st.accs

(* ---------- instruction transfer ---------- *)

let value_is_const_int (v : Value.t) =
  match v with Value.Imm (_, n) -> Some n | _ -> None

let classify_gep idxs =
  let all_const = List.for_all (fun v -> value_is_const_int v <> None) idxs in
  if not all_const then Acc_array_index
  else
    match idxs with
    | [ Value.Imm (_, n) ] when n <> 0L -> Acc_array_index
    | _ -> Acc_struct_index

let handle_copy st ~fname dst src =
  let nd = node_of st ~fname dst and ns = node_of st ~fname src in
  match (nd, ns) with
  | Some nd, Some ns -> unify nd ns
  | Some n, None | None, Some n -> collapse n
  | None, None -> ()

(* Section 4.8: for copies to or from userspace, merge only the targets of
   the outgoing edges of the copied objects; this requires precise type
   information on both sides, otherwise collapse each node individually
   while preventing the merge itself. *)
let handle_user_copy st ~fname dst src =
  let nd = node_of st ~fname dst and ns = node_of st ~fname src in
  match (nd, ns) with
  | Some nd, Some ns ->
      let nd = find nd and ns = find ns in
      if nd.collapsed || ns.collapsed || nd.nty = None || ns.nty = None then begin
        collapse nd;
        collapse ns
      end
      else unify (deref st nd) (deref st ns)
  | Some n, None | None, Some n -> collapse n
  | None, None -> ()

let handle_extern_call st ~fname ~instr ~callee args result_node =
  let reason = "escapes to unanalyzed '" ^ callee ^ "'" in
  List.iteri
    (fun slot arg ->
      match node_of_int st ~fname arg with
      | Some n ->
          mark_extern_exposed st ~fname ~instr ~slot ~reason n;
          set_flag n Unknown
      | None -> ())
    args;
  match result_node with
  | Some n ->
      set_flag n Unknown;
      mark_extern_exposed st ~fname ~instr ~slot:(-1)
        ~reason:("result of unanalyzed '" ^ callee ^ "'")
        n
  | None -> ()

let is_defined_analyzed st name =
  match Irmod.find_func st.irmod name with
  | Some f -> not (Func.has_attr f Func.Noanalyze)
  | None -> false

let unify_call st ~fname callee_name args result_key =
  match Irmod.find_func st.irmod callee_name with
  | None -> ()
  | Some callee ->
      List.iteri
        (fun i arg ->
          match List.nth_opt callee.Func.f_params i with
          | Some (_, pty) when tracked_ty st pty -> (
              let pnode = key_node st (Kreg (callee_name, i)) in
              match node_of_int st ~fname arg with
              | Some a -> unify pnode a
              | None -> ())
          | _ -> ())
        args;
      (match result_key with
      | Some key when tracked_ty st callee.Func.f_ret ->
          unify (key_node st key) (key_node st (Kret callee_name))
      | _ -> ())

let handle_alloc st ~fname ~instr (decl : Allocdecl.t) args result_node =
  match result_node with
  | None -> ()
  | Some n ->
      set_flag n Heap;
      let pool_node =
        match decl.Allocdecl.a_pool_arg with
        | Some i -> (
            match List.nth_opt args i with
            | Some v -> node_of st ~fname v
            | None -> None)
        | None -> None
      in
      let size_class =
        match decl.Allocdecl.a_size_arg with
        | Some i -> (
            match List.nth_opt args i with
            | Some (Value.Imm (_, sz)) ->
                Allocdecl.size_class decl (Int64.to_int sz)
            | _ -> None)
        | None -> None
      in
      if st.recording then
        st.allocs <-
          {
            al_func = fname;
            al_instr = instr;
            al_alloc = decl.Allocdecl.a_alloc;
            al_node = n;
            al_pool_node = pool_node;
            al_size_class = size_class;
          }
          :: st.allocs

let is_sva_name name =
  let pfx p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  pfx "llva_" || pfx "sva_" || pfx "pchk_"

let handle_call st ~fname (i : Instr.t) callee args =
  let result_key =
    match Instr.result i with
    | Some (Value.Reg (id, ty, _)) when tracked_ty st ty -> Some (Kreg (fname, id))
    | _ -> None
  in
  let result_node = Option.map (key_node st) result_key in
  match callee with
  | Value.Fn (name, _) -> (
      match Allocdecl.find st.cfg.allocators name with
      | Some decl -> handle_alloc st ~fname ~instr:i.Instr.id decl args result_node
      | None -> (
          match Allocdecl.find_free st.cfg.allocators name with
          | Some _ -> (
              (* The object being freed is the last argument by convention
                 (kfree(p); kmem_cache_free(cache, p)). *)
              match List.rev args with
              | obj :: _ -> (
                  match node_of st ~fname obj with
                  | Some n ->
                      if st.recording then
                        st.frees <- (fname, i.Instr.id, n) :: st.frees
                  | None -> ())
              | [] -> ())
          | None ->
              if List.mem name st.cfg.user_copy_functions then (
                match args with
                | dst :: src :: _ -> handle_user_copy st ~fname dst src
                | _ -> ())
              else if List.mem name st.cfg.copy_functions then (
                match args with
                | dst :: src :: _ -> handle_copy st ~fname dst src
                | _ -> ())
              else if Some name = st.cfg.syscall_register then (
                (* sva.register.syscall(num, handler) *)
                match args with
                | [ Value.Imm (_, num); Value.Fn (h, _) ] ->
                    Hashtbl.replace st.syscalls (Int64.to_int num) h
                | _ -> ())
              else if Some name = st.cfg.syscall_invoke then (
                (* Internal syscall: resolved to a direct call when the
                   number is a constant and registered (Section 4.8). *)
                match args with
                | Value.Imm (_, num) :: rest -> (
                    match Hashtbl.find_opt st.syscalls (Int64.to_int num) with
                    | Some h -> unify_call st ~fname h rest result_key
                    | None ->
                        handle_extern_call st ~fname ~instr:i.Instr.id
                          ~callee:name rest result_node)
                | _ ->
                    handle_extern_call st ~fname ~instr:i.Instr.id ~callee:name
                      args result_node)
              else if List.mem name st.cfg.known_externs then ()
              else if is_sva_name name then
                (* SVA-OS operations are implemented by the (trusted) SVM
                   and do not leak kernel pointers to unknown code. *)
                ()
              else if is_defined_analyzed st name then
                unify_call st ~fname name args result_key
              else
                handle_extern_call st ~fname ~instr:i.Instr.id ~callee:name
                  args result_node))
  | callee_v -> (
      match node_of st ~fname callee_v with
      | Some cn ->
          if st.recording then
            st.indirects <-
              {
                is_func = fname;
                is_instr = i.Instr.id;
                is_callee = cn;
                is_args = args;
                is_result_key = result_key;
                is_applied = [];
              }
              :: st.indirects
      | None -> ())

let handle_intrinsic st ~fname (i : Instr.t) name args =
  let result_node =
    match Instr.result i with
    | Some (Value.Reg (id, ty, _)) when tracked_ty st ty ->
        Some (key_node st (Kreg (fname, id)))
    | _ -> None
  in
  match (name, result_node) with
  | "sva_pseudo_alloc", Some n ->
      (* Manufactured-address registration (Section 4.7): the returned
         pointer targets a BIOS-era object that is registered at run time,
         so it is neither unknown nor incomplete. *)
      set_flag n Bios;
      add_ty n Ty.i8
  | "sva_user_base", Some n ->
      set_flag n Userspace;
      add_ty n Ty.i8
  | ("sva_register_syscall" | "sva_syscall"), _ -> (
      (* Also accept the registration/invoke operations as intrinsics. *)
      match (Some name = st.cfg.syscall_register, args) with
      | true, [ Value.Imm (_, num); Value.Fn (h, _) ] ->
          Hashtbl.replace st.syscalls (Int64.to_int num) h
      | _ -> (
          match (Some name = st.cfg.syscall_invoke, args) with
          | true, Value.Imm (_, num) :: rest -> (
              match Hashtbl.find_opt st.syscalls (Int64.to_int num) with
              | Some h -> unify_call st ~fname h rest None
              | None -> ())
          | _ -> ()))
  | _ -> ()

let transfer st ~fname (i : Instr.t) =
  let node_of = node_of st ~fname and node_of_int = node_of_int st ~fname in
  let result_node () =
    match Instr.result i with
    | Some v -> node_of v
    | None -> None
  in
  match i.Instr.kind with
  | Instr.Alloca (ty, _) -> (
      match result_node () with
      | Some n ->
          set_flag n Stack;
          add_ty n ty
      | None -> ())
  | Instr.Malloc (ty, _) -> (
      match result_node () with
      | Some n ->
          set_flag n Heap;
          (* A byte-typed malloc (the lowering of C's malloc) says nothing
             about the objects' type; the casts and accesses decide. *)
          if not (Ty.equal ty Ty.i8) then add_ty n ty;
          if st.recording then
            st.allocs <-
              {
                al_func = fname;
                al_instr = i.Instr.id;
                al_alloc = "malloc";
                al_node = n;
                al_pool_node = None;
                al_size_class = None;
              }
              :: st.allocs
      | None -> ())
  | Instr.Free p -> (
      match node_of p with
      | Some n -> if st.recording then st.frees <- (fname, i.Instr.id, n) :: st.frees
      | None -> ())
  | Instr.Load p -> (
      match node_of p with
      | None -> ()
      | Some pn -> (
          record_access st ~fname ~instr:i.Instr.id Acc_load pn;
          if not (is_interior st fname p) then add_ty pn (Ty.pointee (Value.ty p));
          match Instr.result i with
          | Some (Value.Reg (id, ty, _)) when tracked_ty st ty -> (
              match ty with
              | Ty.Ptr _ -> unify (key_node st (Kreg (fname, id))) (deref st pn)
              | _ ->
                  (* Integer load: only alias when pointers already flowed
                     into the loaded-from cells. *)
                  let pn = find pn in
                  if pn.succ <> None then
                    unify (key_node st (Kreg (fname, id))) (deref st pn))
          | _ -> ()))
  | Instr.Store (v, p) -> (
      match node_of p with
      | None -> ()
      | Some pn -> (
          record_access st ~fname ~instr:i.Instr.id Acc_store pn;
          if not (is_interior st fname p) then add_ty pn (Ty.pointee (Value.ty p));
          match v with
          | Value.Reg (_, Ty.Ptr _, _) | Value.Global _ | Value.Fn _ -> (
              match node_of v with
              | Some vn -> unify (deref st pn) vn
              | None -> ())
          | _ -> (
              match node_of_int v with
              | Some vn -> unify (deref st pn) vn
              | None -> ())))
  | Instr.Gep (base, idxs) -> (
      match node_of base with
      | None -> ()
      | Some bn ->
          record_access st ~fname ~instr:i.Instr.id (classify_gep idxs) bn;
          if not (is_interior st fname base) then
            add_ty bn (Ty.pointee (Value.ty base));
          (match result_node () with Some rn -> unify rn bn | None -> ());
          if
            gep_enters_struct st.irmod.Irmod.m_ctx (Value.ty base) idxs
            || is_interior st fname base
          then set_interior st fname i)
  | Instr.Cast (op, x, ty) -> (
      match op with
      | Instr.Bitcast | Instr.Ptrtoint -> (
          match (result_node (), node_of_int x) with
          | Some rn, Some xn ->
              unify rn xn;
              if is_interior st fname x then set_interior st fname i
          | _ -> ())
      | Instr.Inttoptr -> (
          match x with
          | Value.Imm (_, v)
            when st.cfg.null_small_int_casts
                 && (Int64.abs v < 4096L || Int64.equal v (-1L)) ->
              (* Error-encoding casts like (struct f * )-EINVAL: treated as
                 null (Section 4.8). *)
              ()
          | Value.Imm (_, _) -> (
              (* A genuinely manufactured address: unanalyzable unless
                 registered via sva.pseudo.alloc. *)
              match result_node () with
              | Some n ->
                  set_flag n Unknown;
                  mark_extern_exposed st ~fname ~instr:i.Instr.id ~slot:(-1)
                    ~reason:"manufactured address (constant inttoptr)" n
              | None -> ())
          | _ -> (
              (* A non-constant integer cast to a pointer: the integer is
                 treated as carrying a pointer (Section 4.7), creating its
                 partition on demand rather than collapsing to Unknown. *)
              match (result_node (), node_of x) with
              | Some rn, Some xn -> unify rn xn
              | Some rn, None ->
                  set_flag rn Unknown;
                  mark_extern_exposed st ~fname ~instr:i.Instr.id ~slot:(-1)
                    ~reason:"inttoptr of an untracked integer" rn
              | None, _ -> ()))
      | Instr.Trunc | Instr.Zext | Instr.Sext -> (
          match (result_node (), node_of_int x) with
          | Some rn, Some xn when Ty.equal ty Ty.i64 || Ty.is_pointer ty ->
              unify rn xn
          | _ -> ())
      | Instr.Fptosi | Instr.Sitofp -> ())
  | Instr.Binop (_, a, b) -> (
      match Instr.result i with
      | Some (Value.Reg (_, ty, _)) when tracked_ty st ty -> (
          let ops = List.filter_map node_of_int [ a; b ] in
          match ops with
          | [] -> ()
          | ns ->
              let rn = Option.get (result_node ()) in
              List.iter (unify rn) ns)
      | _ -> ())
  | Instr.Phi incoming -> (
      match result_node () with
      | Some rn ->
          List.iter
            (fun (_, v) ->
              match node_of_int v with Some n -> unify rn n | None -> ())
            incoming
      | None ->
          (* Untracked phi (e.g. i32): nothing to do. *)
          ())
  | Instr.Select (_, a, b) -> (
      match result_node () with
      | Some rn ->
          List.iter
            (fun v -> match node_of_int v with Some n -> unify rn n | None -> ())
            [ a; b ]
      | None -> ())
  | Instr.Atomic_cas (p, e, r) -> (
      match node_of p with
      | None -> ()
      | Some pn ->
          record_access st ~fname ~instr:i.Instr.id Acc_store pn;
          List.iter
            (fun v -> match node_of_int v with Some n -> unify (deref st pn) n | None -> ())
            [ e; r ];
          (match result_node () with
          | Some rn -> unify rn (deref st pn)
          | None -> ()))
  | Instr.Atomic_add (p, d) -> (
      match node_of p with
      | None -> ()
      | Some pn ->
          record_access st ~fname ~instr:i.Instr.id Acc_store pn;
          (match node_of_int d with
          | Some n -> unify (deref st pn) n
          | None -> ());
          (match result_node () with
          | Some rn -> unify rn (deref st pn)
          | None -> ()))
  | Instr.Membar -> ()
  | Instr.Icmp _ -> ()
  | Instr.Call (callee, args) -> handle_call st ~fname i callee args
  | Instr.Intrinsic (name, args) -> handle_intrinsic st ~fname i name args

(* ---------- driver ---------- *)

let term_transfer st ~fname (f : Func.t) (b : Func.block) =
  match b.Func.term with
  | Instr.Ret (Some v) when tracked_ty st (Value.ty v) -> (
      match node_of_int st ~fname v with
      | Some n -> unify (key_node st (Kret f.Func.f_name)) n
      | None -> ())
  | _ -> ()

let sig_compatible (m : Irmod.t) fn_name (args : Value.t list) ret_ty =
  match Irmod.find_func m fn_name with
  | None -> false
  | Some f ->
      List.length f.Func.f_params = List.length args
      && List.for_all2
           (fun (_, pty) arg -> Ty.equal pty (Value.ty arg))
           f.Func.f_params args
      && (Ty.equal f.Func.f_ret ret_ty || Ty.equal ret_ty Ty.Void)

let resolve_indirects st =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun site ->
        let callee = find site.is_callee in
        List.iter
          (fun fn ->
            if not (List.mem fn site.is_applied) then begin
              site.is_applied <- fn :: site.is_applied;
              changed := true;
              unify_call st ~fname:site.is_func fn site.is_args
                site.is_result_key
            end)
          callee.funcs)
      st.indirects
  done

let mark_syscall_entries st =
  Hashtbl.iter
    (fun _ handler ->
      match Irmod.find_func st.irmod handler with
      | None -> ()
      | Some f ->
          List.iteri
            (fun idx (_, pty) ->
              if Ty.is_pointer pty then begin
                let n = key_node st (Kreg (handler, idx)) in
                set_flag n Userspace
              end)
            f.Func.f_params)
    st.syscalls

let propagate_incompleteness st =
  (* Collect representatives. *)
  let reps = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ n ->
      let r = find n in
      Hashtbl.replace reps r.nid r)
    st.env;
  let seed r =
    (r.extern_seed && not st.cfg.externs_complete)
    || r.nflags land flag_bit Unknown <> 0
    || (r.nflags land flag_bit Userspace <> 0 && not st.cfg.userspace_valid)
  in
  let worklist = ref [] in
  Hashtbl.iter
    (fun _ r ->
      if seed r && not r.incomplete then begin
        r.incomplete <- true;
        worklist := r :: !worklist
      end)
    reps;
  while !worklist <> [] do
    match !worklist with
    | [] -> ()
    | r :: rest -> (
        worklist := rest;
        match r.succ with
        | Some s ->
            let s = find s in
            if not s.incomplete then begin
              s.incomplete <- true;
              worklist := s :: !worklist
            end
        | None -> ())
  done

let run ?(config = default_config) (m : Irmod.t) =
  let st =
    {
      cfg = config;
      irmod = m;
      next_id = 0;
      recording = true;
      env = Hashtbl.create 256;
      accs = [];
      allocs = [];
      frees = [];
      indirects = [];
      syscalls = Hashtbl.create 16;
      interior = Hashtbl.create 256;
      escapes = Hashtbl.create 64;
    }
  in
  (* Global initializers holding symbol addresses create points-to edges
     (e.g. syscall tables, file-operation tables). *)
  List.iter
    (fun (g : Irmod.global) ->
      match g.Irmod.g_init with
      | Irmod.Ptrs syms ->
          let gn = key_node st (Kglobal g.Irmod.g_name) in
          List.iter
            (fun s ->
              let target =
                if Irmod.find_func m s <> None || Irmod.extern_ty m s <> None
                then key_node st (Kfunc s)
                else key_node st (Kglobal s)
              in
              unify (deref st gn) target)
            syms
      | Irmod.Zero | Irmod.Str _ | Irmod.Ints _ -> ())
    m.Irmod.m_globals;
  (* Pre-pass: collect syscall registrations so internal syscalls resolve
     even when registration happens later in program order. *)
  List.iter
    (fun (f : Func.t) ->
      if not (Func.has_attr f Func.Noanalyze) then
        Func.iter_instrs f (fun _ (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Call (Value.Fn (name, _), [ Value.Imm (_, num); Value.Fn (h, _) ])
              when Some name = config.syscall_register ->
                Hashtbl.replace st.syscalls (Int64.to_int num) h
            | Instr.Intrinsic (name, [ Value.Imm (_, num); Value.Fn (h, _) ])
              when Some name = config.syscall_register ->
                Hashtbl.replace st.syscalls (Int64.to_int num) h
            | _ -> ()))
    m.Irmod.m_funcs;
  (* Main transfer pass, iterated to a fixpoint: integer tracking only
     unifies against partitions that already exist, so constraints
     discovered late require another sweep. *)
  let pass () =
    List.iter
      (fun (f : Func.t) ->
        if not (Func.has_attr f Func.Noanalyze) then begin
          let fname = f.Func.f_name in
          Func.iter_instrs f (fun _ i -> transfer st ~fname i);
          List.iter (fun b -> term_transfer st ~fname f b) f.Func.f_blocks
        end)
      m.Irmod.m_funcs;
    resolve_indirects st
  in
  pass ();
  st.recording <- false;
  let rec iterate n =
    let v = !generation in
    pass ();
    if !generation <> v && n < 10 then iterate (n + 1)
  in
  iterate 0;
  mark_syscall_entries st;
  propagate_incompleteness st;
  st

(* ---------- queries ---------- *)

let same_node a b = find a == find b
let node_id n = (find n).nid
let has_flag n f = (find n).nflags land flag_bit f <> 0
let node_ty n = (find n).nty

let is_type_homog n =
  let n = find n in
  (not n.collapsed) && n.nty <> None && n.nflags land flag_bit Unknown = 0

let is_complete n = not (find n).incomplete

let node_succ n =
  match (find n).succ with Some s -> Some (find s) | None -> None

let flags_to_string n =
  let n = find n in
  let s = Buffer.create 8 in
  List.iter
    (fun (f, c) -> if n.nflags land flag_bit f <> 0 then Buffer.add_char s c)
    [ (Global, 'G'); (Heap, 'H'); (Stack, 'S'); (Unknown, 'U'); (Funcs, 'F');
      (Userspace, 'A'); (Bios, 'B') ];
  if n.incomplete then Buffer.add_char s 'I';
  Buffer.contents s

let nodes st =
  let seen = Hashtbl.create 64 in
  Hashtbl.fold
    (fun _ n acc ->
      let r = find n in
      if Hashtbl.mem seen r.nid then acc
      else begin
        Hashtbl.replace seen r.nid ();
        r :: acc
      end)
    st.env []
  |> List.sort (fun a b -> compare a.nid b.nid)

let value_node st ~fname v =
  match v with
  | Value.Reg (id, _, _) -> (
      match Hashtbl.find_opt st.env (Kreg (fname, id)) with
      | Some n -> Some (find n)
      | None -> None)
  | Value.Global (g, _) -> (
      match Hashtbl.find_opt st.env (Kglobal g) with
      | Some n -> Some (find n)
      | None -> None)
  | Value.Fn (f, _) -> (
      match Hashtbl.find_opt st.env (Kfunc f) with
      | Some n -> Some (find n)
      | None -> None)
  | _ -> None

let reg_node st ~fname id =
  match Hashtbl.find_opt st.env (Kreg (fname, id)) with
  | Some n -> Some (find n)
  | None -> None

let global_node st g =
  match Hashtbl.find_opt st.env (Kglobal g) with
  | Some n -> Some (find n)
  | None -> None

let ret_node st fname =
  match Hashtbl.find_opt st.env (Kret fname) with
  | Some n -> Some (find n)
  | None -> None

let accesses st = List.rev st.accs
let alloc_sites st = List.rev st.allocs
let free_sites st = List.rev st.frees

let escape_sites st =
  Hashtbl.fold
    (fun (f, instr, slot) (reason, n) acc ->
      ((f, instr, slot), { es_func = f; es_instr = instr; es_reason = reason; es_node = n })
      :: acc)
    st.escapes []
  |> List.sort (fun (ka, _) (kb, _) -> compare ka kb)
  |> List.map snd

let callsite_targets st ~fname instr =
  match
    List.find_opt
      (fun s -> s.is_func = fname && s.is_instr = instr)
      st.indirects
  with
  | None -> []
  | Some site ->
      let callee = find site.is_callee in
      let f = Irmod.find_func st.irmod fname in
      let filter_sig =
        match f with
        | Some f -> Func.has_attr f Func.Callsig_assert
        | None -> false
      in
      if filter_sig then
        List.filter
          (fun fn ->
            sig_compatible st.irmod fn site.is_args
              (match Irmod.symbol_ty st.irmod fn with
              | Some (Ty.Func (r, _, _)) -> r
              | _ -> Ty.Void))
          callee.funcs
      else callee.funcs

let syscall_table st =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.syscalls []
  |> List.sort compare

let unify_nodes _st a b = unify a b

let node_count st = List.length (nodes st)

let dump st =
  let buf = Buffer.create 1024 in
  List.iter
    (fun n ->
      let ty =
        match n.nty with
        | Some t -> Ty.to_string t
        | None -> if n.collapsed then "<collapsed>" else "<unknown>"
      in
      Buffer.add_string buf
        (Printf.sprintf "node %d [%s]%s ty=%s" n.nid (flags_to_string n)
           (if is_type_homog n then " TH" else "")
           ty);
      (match n.succ with
      | Some s -> Buffer.add_string buf (Printf.sprintf " -> node %d" (find s).nid)
      | None -> ());
      if n.globset <> [] then
        Buffer.add_string buf (" globals:{" ^ String.concat "," n.globset ^ "}");
      if n.funcs <> [] then
        Buffer.add_string buf (" funcs:{" ^ String.concat "," n.funcs ^ "}");
      Buffer.add_char buf '\n')
    (nodes st);
  Buffer.contents buf
