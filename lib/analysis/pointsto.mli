(** Unification-based (Steensgaard-style) points-to analysis with memory
    classes, type-homogeneity inference and completeness tracking — the
    interprocedural analysis underlying the SVA safety-checking compiler
    (Sections 4.1, 4.3, 4.8).

    Every pointer value in the analyzed module is mapped to a {e node} of
    the points-to graph; a node abstracts the partition of memory objects
    that pointer may target.  Unification keeps each pointer pointing to a
    unique node.  Nodes carry:

    - {e memory class flags} (Heap / Stack / Global / Function / Unknown /
      Userspace / Bios), as in the H/G/S/U markings of Figure 2;
    - an inferred {e homogeneous type}: pools whose accesses all agree on
      one type (or arrays thereof) are type-homogeneous (TH), enabling the
      compile-time type-safety argument of Section 4.1;
    - a {e completeness} bit: nodes exposed to unanalyzed code are
      incomplete and receive only "reduced checks" (Section 4.5).

    Kernel-specific refinements implemented here (Section 4.8):
    small-integer-to-pointer casts treated as null, pointer-sized integer
    tracking, internal syscalls resolved through [sva.register.syscall],
    and the userspace-copy merge heuristic. *)

open Sva_ir

(** Memory class flags. *)
type flag = Heap | Stack | Global | Unknown | Funcs | Userspace | Bios

type node
(** An equivalence class of memory objects (a points-to graph node).
    Mutable: unification may merge nodes at any time; always compare with
    {!same_node} and query through accessors. *)

(** How an instruction accesses memory — the classification used by the
    static safety metrics of Table 9. *)
type access_kind =
  | Acc_load
  | Acc_store
  | Acc_struct_index  (** getelementptr with constant field indexing *)
  | Acc_array_index  (** getelementptr with a variable or non-zero index *)

type access = {
  acc_func : string;
  acc_instr : int;  (** instruction id within the function *)
  acc_kind : access_kind;
  acc_node : node;  (** partition of the pointer operand's targets *)
}

type alloc_site = {
  al_func : string;
  al_instr : int;
  al_alloc : string;  (** allocator function name, or "malloc"/"alloca" *)
  al_node : node;  (** partition the allocated object belongs to *)
  al_pool_node : node option;  (** pool descriptor partition (pool allocs) *)
  al_size_class : int option;  (** exposed size class (ordinary allocs) *)
}

type escape_site = {
  es_func : string;
  es_instr : int;
  es_reason : string;  (** human-readable escape cause *)
  es_node : node;  (** partition exposed at this site *)
}
(** One point where a partition leaks to code the analysis cannot see: an
    argument to (or result of) an unanalyzed external call, a constant
    int-to-pointer cast, or an untracked-integer cast.  These are the raw
    material of the pool-safety completeness certificates: the escape
    frontier the trusted checker re-derives and compares against. *)

(** Analysis configuration — the porting inputs of Sections 4.3/4.4 plus
    the analysis-improvement toggles of Section 4.8. *)
type config = {
  allocators : Allocdecl.t list;
  copy_functions : string list;
      (** memcpy/memmove-style: [(dst, src, n)] argument order *)
  known_externs : string list;
      (** external functions with no pointer-capturing behaviour (memset,
          strlen, ...): calls to them neither merge partitions nor mark
          them incomplete *)
  user_copy_functions : string list;
      (** copy_to_user/copy_from_user-style functions: the improved merge
          heuristic applies (merge pointees, not the objects) *)
  syscall_register : string option;
      (** name of the SVA-OS operation registering syscall handlers *)
  syscall_invoke : string option;
      (** name of the intrinsic performing an internal syscall by number *)
  track_int_ptrs : bool;  (** track pointer-sized integers as pointers *)
  null_small_int_casts : bool;
      (** treat (T* )1, (T* )-1 error-encoding casts as null *)
  userspace_valid : bool;
      (** "entire kernel" mode: userspace registered as a valid object for
          syscall arguments, removing that incompleteness source *)
  externs_complete : bool;
      (** "entire kernel" mode: all entry points known to the analysis *)
}

val default_config : config
(** Empty allocator list, kernel heuristics on, "as tested" completeness. *)

type result

val run : ?config:config -> Irmod.t -> result
(** Analyze a module.  Functions carrying {!Func.Noanalyze} are treated as
    external code (their bodies are skipped and calls to them are
    unanalyzed-callee sinks), modelling kernel libraries left out of the
    safety-checking compilation (Section 7.2). *)

(** {2 Node queries} *)

val find : node -> node
(** Union-find representative (clients normally don't need this). *)

val same_node : node -> node -> bool
val node_id : node -> int
(** Stable id of the representative. *)

val has_flag : node -> flag -> bool
val node_ty : node -> Ty.t option
(** The homogeneous type, if the node is not collapsed. *)

val is_type_homog : node -> bool
(** Type-homogeneous: uncollapsed inferred type and no [Unknown] flag. *)

val is_complete : node -> bool

val node_succ : node -> node option
(** The partition that pointers stored in this partition's objects target
    (the points-to edge), if any. *)

val flags_to_string : node -> string
(** Compact flag string as in Figure 2, e.g. ["GHA"]. *)

(** {2 Result queries} *)

val nodes : result -> node list
(** All distinct representative nodes. *)

val value_node : result -> fname:string -> Value.t -> node option
(** Partition targeted by a pointer value occurring in function [fname]. *)

val reg_node : result -> fname:string -> int -> node option
(** Partition targeted by register [id] of function [fname]. *)

val global_node : result -> string -> node option
(** Partition containing global [name]. *)

val ret_node : result -> string -> node option
(** Partition targeted by the return value of function [name]. *)

val accesses : result -> access list
val alloc_sites : result -> alloc_site list

val free_sites : result -> (string * int * node) list
(** Deallocation call sites: (function, instr id, node freed from). *)

val escape_sites : result -> escape_site list
(** Every recorded escape-frontier site, in deterministic (function,
    instr) order.  One instruction may expose several partitions (one per
    escaping operand). *)

val is_sva_name : string -> bool
(** Is this the name of an SVA-OS operation or check intrinsic
    ([llva_]/[sva_]/[pchk_] prefix)?  Calls to these are implemented by
    the trusted SVM and are not escape sites; exported so the trusted
    certificate checker classifies call sites by the same rule. *)

val callsite_targets : result -> fname:string -> int -> string list
(** Possible callees of an indirect call instruction, per the points-to
    function sets (the indirect call check set of Section 4.5). *)

val syscall_table : result -> (int * string) list
(** Handlers registered through the configured syscall-registration
    operation, as (number, function). *)

val unify_nodes : result -> node -> node -> unit
(** Merge two partitions (used by metapool inference when a single kernel
    pool maps to several partitions, Section 4.3). *)

val node_count : result -> int

val dump : result -> string
(** Render all nodes with flags, type and edges — the Figure 2 dump. *)

val gep_enters_struct : Ty.ctx -> Ty.t -> Value.t list -> bool
(** Does a [getelementptr] with this base pointer type and index list
    descend into a structure field?  Such results are {e interior}
    pointers: their access types do not constrain the partition's
    homogeneous type (an element pointer into an array does not count —
    array elements are whole objects of the element type).  Shared by the
    analysis, the trusted checker and the bug injector so all three agree
    on the rule. *)
