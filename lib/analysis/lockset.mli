(** Interprocedural concurrency-safety analysis: must-hold locksets and
    interrupt-atomicity race detection.

    The kernel's concurrency mechanisms are SVA-OS operations —
    [sva_cli]/[sva_sti] and the spinlock pair
    [sva_lock_acquire]/[sva_lock_release] — so protection state is fully
    visible in the virtual instruction stream and can be computed
    statically.  This pass runs a forward must-dataflow whose lattice is
    (interrupt-masked bit) x (set of held locks), interprocedurally via
    call-graph summaries keyed on each function's entry protection.
    Shared state is classified with the unification points-to analysis:
    a memory class is {e shared} when it is accessed both from code
    reachable from an interrupt handler and from code reachable from a
    syscall handler.

    Finding checkers: [race] (shared access pair with disjoint
    protection, or lock-free write to a lock-disciplined class),
    [deadlock] (lock-order-graph cycle), [cli-imbalance] /
    [lock-imbalance] (return path with changed protection), and
    [atomic-sleep] (sleeping allocation while masked or holding a lock).

    The analysis is untrusted: every discharged obligation is emitted as
    an atomicity certificate ({!bundle}), re-verified by the small
    trusted checker {!Sva_tyck.Atomcert}.  The two share only the
    one-instruction transfer kernel ({!step}) and the call-effect
    summaries ({!effects}) — the Rangecert TCB split. *)

open Sva_ir

module SS : Set.S with type elt = string

(** {1 The protection lattice}

    Exposed concretely so the property tests can exercise lattice laws
    and the trusted checker can replay transfers. *)

type prot = { p_masked : bool; p_locks : SS.t }

type fact = Unreached | Known of prot

val unprotected : prot
val prot_equal : prot -> prot -> bool

val prot_join : prot -> prot -> prot
(** Must-information meet: conjunction of the mask bits, intersection of
    the locksets. *)

val prot_leq : prot -> prot -> bool
(** [prot_leq claim fact]: the claim is justified by the fact ([claim]
    promises no more than [fact] guarantees). *)

val prot_to_string : prot -> string
val fact_equal : fact -> fact -> bool
val fact_join : fact -> fact -> fact

(** {1 Configuration} *)

type config = {
  ls_interrupt_register : string;
  ls_syscall_register : string;
      (** the SVM syscall registration intrinsic; scanned syntactically
          in addition to the points-to syscall table, which cannot see
          handlers that were cast before registration *)
  ls_sleeping : string list;
      (** functions that may sleep (block), per the lint layer *)
  ls_extra_roots : string list;
      (** additional unmasked entry points (the syscall dispatcher) *)
}

val default_config : config

(** {1 The shared transfer kernel}

    Used by both the analysis and the trusted certificate checker. *)

type eff
(** May-effect of a call on the caller's protection state. *)

val effects : Irmod.t -> (string, eff) Hashtbl.t
(** Syntactic fixpoint over direct calls.  Bodyless externs are SVM
    builtins with no effect on protection state; indirect calls and
    [sva_syscall] clobber the whole fact. *)

val defs_of : Func.t -> (int, Instr.t) Hashtbl.t
(** Instruction-id -> defining instruction, for operand resolution. *)

val root_global : (int, Instr.t) Hashtbl.t -> Value.t -> string option
(** The global a value is rooted at, through casts and geps. *)

val step :
  defs:(int, Instr.t) Hashtbl.t ->
  effs:(string, eff) Hashtbl.t ->
  fact ->
  Instr.t ->
  fact
(** The one-instruction transfer function. *)

(** {1 Findings} *)

type finding = {
  lf_checker : string;  (** race | deadlock | cli-imbalance | lock-imbalance | atomic-sleep *)
  lf_func : string;
  lf_instr : int option;
  lf_message : string;
}

val render_finding : finding -> string

(** {1 Atomicity certificates} *)

type fcert = {
  fc_func : string;
  fc_entry : prot;  (** claimed entry protection *)
  fc_blocks : (string * fact) list;  (** claimed fact at each block entry *)
}

type acert = {
  ac_func : string;
  ac_instr : int;  (** the access instruction *)
  ac_global : string;  (** root global of the accessed address *)
  ac_prot : prot;  (** claimed protection at the access *)
}

type bundle = { cb_fcerts : fcert list; cb_acerts : acert list }

(** {1 Running the analysis} *)

type result

val run : ?config:config -> Irmod.t -> Pointsto.result -> result

val findings : result -> finding list
(** Sorted and deduplicated. *)

val bundle : result -> bundle

val entry_config : result -> string -> prot option
(** Root entry points (interrupt handlers, syscall handlers, kernel
    entries) and their boundary protection — the trusted checker's
    ground truth for entry claims. *)

val count_findings : result -> string -> int
(** Findings reported by one checker. *)

val shared_count : result -> int
(** Memory classes reachable from both sides. *)

val access_count : result -> int
(** Classified direct global accesses in the handler-reachable universe. *)

val cert_count : result -> int
(** Atomicity (access) certificates emitted. *)

val fact_count : result -> int
(** Block-entry facts claimed across all function certificates. *)

val lock_edges : result -> (string * string) list
(** Deduplicated lock-order edges (held, acquired). *)

val funcs_analyzed : result -> int
val iterations : result -> int
