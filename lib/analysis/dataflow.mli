(** A generic iterative dataflow framework over {!Sva_ir.Cfg}.

    The solver is a worklist algorithm on basic blocks: block facts are
    joined over the incoming edges (forward) or outgoing edges
    (backward), pushed through a client transfer function, and the
    block's dependents are revisited until the facts stop changing.
    Blocks are visited in reverse post-order (forward) or its reverse
    (backward), which makes convergence fast on reducible flow graphs
    and the result order-deterministic.

    The lattice is a client module: the solver only needs [bottom],
    [join] and [equal].  Monotone transfer functions over a
    finite-height lattice terminate; the solver additionally caps the
    number of sweeps as a defence against a buggy client and reports the
    iteration count so tests can assert convergence behaviour.

    Three extension points cover the clients' needs:

    - [edge]: an optional refinement applied to a fact as it flows along
      one CFG edge — how conditional-branch information ("[p] is null on
      the true edge", "[i < n] here") enters the analysis;
    - [widen]: an optional extrapolation applied on block revisits, so
      infinite-height lattices (e.g. {!Interval}) converge;
    - {!Summaries}: a worklist fixpoint over function names used for
      interprocedural propagation through {!Callgraph} summaries. *)

open Sva_ir

module type LATTICE = sig
  type t

  val bottom : t
  (** The "no information yet" element; the initial in-fact of every
      block except the entry. *)

  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) : sig
  type result = {
    input : string -> L.t;
        (** fact at block entry (forward) / block exit (backward) *)
    output : string -> L.t;
        (** fact at block exit (forward) / block entry (backward) *)
    iterations : int;
        (** total block visits performed before the fixpoint *)
  }

  val solve :
    ?direction:direction ->
    ?entry:L.t ->
    ?edge:(src:string -> dst:string -> L.t -> L.t) ->
    ?widen:(label:string -> old:L.t -> cur:L.t -> L.t) ->
    transfer:(Func.block -> L.t -> L.t) ->
    Func.t ->
    Cfg.t ->
    result
  (** [solve ~transfer f cfg] computes the fixpoint over [f]'s reachable
      blocks.  [entry] (default [L.bottom]) is the boundary fact of the
      entry block (forward) or of every exit block (backward).  [edge]
      (default identity) refines a fact flowing along a specific edge
      {e before} it is joined into the destination.  [widen] (default
      none) is applied on revisits of a block to the previously stored
      input ([old]) and the freshly computed one ([cur]); it must return
      an upper bound of both, and for an infinite-height lattice it must
      stabilize every ascending chain (typically applied at loop headers
      only). *)
end

(** Interprocedural summary fixpoint: each function owns a summary value;
    [transfer] recomputes one function's view and may update any other
    function's summary through [update] (e.g. a caller tainting its
    callee's parameters).  Every function whose summary changes is
    re-queued, as are its callers, until nothing moves. *)
module Summaries : sig
  type 'a t

  val solve :
    Callgraph.t ->
    funcs:string list ->
    init:(string -> 'a) ->
    equal:('a -> 'a -> bool) ->
    transfer:(get:(string -> 'a) -> update:(string -> 'a -> unit) ->
              string -> unit) ->
    'a t

  val get : 'a t -> string -> 'a
  (** @raise Not_found for names outside [funcs]. *)
end
