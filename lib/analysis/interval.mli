(** Value-range abstract interpretation over the SVA IR, with
    exportable range certificates.

    The analysis is {e untrusted} in the Section 5 sense: it computes
    per-register intervals (widening/narrowing at loop heads,
    branch-sensitive refinement on [icmp]-guarded edges, interprocedural
    argument/return summaries over the call graph) and, for every
    variable-index [getelementptr] it can prove in-extent, emits a
    {!cert} whose {!fact} chain the small trusted checker
    ({!Sva_tyck.Rangecert}) re-verifies with purely local rules.  A
    producer-side validation pass replays those rules and widens any
    fact it cannot re-establish, so every emitted certificate passes the
    checker verbatim. *)

open Sva_ir

(** {1 The interval domain} *)

(** [Iv (lo, hi)] with [None] as the infinite bound; values are the
    SVM's canonical (sign-extended) register representation. *)
type ival = Bot | Iv of int64 option * int64 option

val top : ival
val const : int64 -> ival

val range : int64 -> int64 -> ival
(** [range lo hi]; [Bot] if [lo > hi]. *)

val is_top : ival -> bool
val is_bot : ival -> bool
val equal_ival : ival -> ival -> bool
val join_ival : ival -> ival -> ival
val meet_ival : ival -> ival -> ival

val subset : ival -> ival -> bool
(** Inclusion order of the lattice. *)

val contains : ival -> int64 -> bool

val widen_ival : ival -> ival -> ival
(** [widen_ival old cur]: any bound that moved jumps to infinity. *)

val width_range : int -> ival
(** The canonical value range of a [w]-bit register. *)

val wrap : int -> ival -> ival
(** Sound post-operation clamp at a bit width: identity if the interval
    fits the representable range, else the full width range. *)

val eval_binop : Instr.binop -> int -> ival -> ival -> ival
(** Abstract transfer of {!Constfold.eval_binop} at the given width. *)

val eval_cast : Instr.cast -> src:Ty.t -> dst:Ty.t -> ival -> ival

val refine : Instr.icmp -> [ `Left | `Right ] -> ival -> ival
(** [refine op side other]: constraint on the subject operand given that
    the comparison evaluated to TRUE ([`Left]: subject is the left
    operand).  Meet it with the subject's current interval. *)

val negate_icmp : Instr.icmp -> Instr.icmp
val ival_to_string : ival -> string

val eval_def : Instr.t -> ival list -> ival
(** Abstract result of a defining instruction over its operand
    intervals (in {!Instr.operands} order; top for unmodeled kinds) —
    the rule the trusted checker replays for [Jdef] facts. *)

val branch_cond :
  lookup:(int -> Instr.t option) ->
  Value.t ->
  pos:bool ->
  (Instr.icmp * Value.t * Value.t) option
(** Resolve a branch condition to the comparison that decides it,
    peeling the int-cast and boolean-retest chains the frontend
    produces; [pos] is true on the then-edge.  Shared with the trusted
    checker so producer and checker agree on guard semantics. *)

val gep_extents : Ty.ctx -> Instr.t -> (int * int * int) list option
(** [(operand position, index register, array length)] per variable
    index of a gep whose constant parts are statically in extent
    (leading zero index, in-range constants, valid struct fields);
    [None] when the gep has no variable index or is out of shape. *)

(** {1 Facts and certificates} *)

(** How a fact is justified; each constructor has a local re-checking
    rule in {!Sva_tyck.Rangecert}. *)
type just =
  | Jwide  (** full canonical range of the register's width *)
  | Jdef  (** re-evaluate the defining instruction over the dep facts *)
  | Jphi  (** inductive: every incoming value inside the claim *)
  | Jguard of { jg_src : string; jg_dst : string }
      (** meet with the branch constraint of edge [jg_src -> jg_dst]
          (the unique predecessor edge of [jg_dst]) *)
  | Jparam of int  (** module-level parameter claim *)
  | Jret of string  (** module-level return claim of the named callee *)

type fact = {
  fa_reg : int;
  mutable fa_ival : ival;
  fa_just : just;
  mutable fa_deps : int option list;
      (** indices of premise facts in the same function's fact array *)
  fa_valid : string;
      (** block where the fact holds (and every block it dominates) *)
}

type cert_kind = Cbounds | Cls

type cert = {
  ce_func : string;
  ce_block : string;
  ce_gep : int;  (** instruction id of the certified gep *)
  ce_kind : cert_kind;
  ce_idx : (int * int) list;
      (** (gep operand position, fact index) per variable index *)
}

type bundle = {
  cb_facts : (string, fact array) Hashtbl.t;
  cb_params : (string * int, ival) Hashtbl.t;
      (** verified parameter claims: (function, param index) -> range *)
  cb_rets : (string, ival) Hashtbl.t;  (** verified return claims *)
  cb_certs : cert list;
}

(** {1 Running the analysis} *)

type result

val run :
  ?entries:(string -> bool) -> Irmod.t -> Pointsto.result -> result
(** [run m pa] analyzes every [Noanalyze]-free function.  [entries]
    (default: every function) marks functions callable from outside the
    module: their parameters are only known to be width-canonical.
    Address-escaping, varargs and [Kernel_entry] functions are treated
    as entries regardless. *)

val certifiable : result -> fname:string -> Instr.t -> bool
(** Does a verified in-extent certificate exist for this gep? *)

val elide : result -> fname:string -> Instr.t -> cert_kind -> bool
(** Like {!certifiable}, and on success idempotently materializes the
    certificate into the bundle (call it when an elision is taken). *)

val bundle : result -> bundle
(** Everything the trusted checker needs: facts, module-level claims and
    the materialized certificates. *)

val cert_counts : result -> int * int
(** Materialized certificates: [(bounds, lscheck)]. *)

val fact_count : result -> int
val iterations : result -> int

val entry_config : result -> string -> bool
(** The [entries] predicate the analysis ran with (the checker must be
    given the same trusted configuration). *)

val value_at : result -> fname:string -> block:string -> Value.t -> ival
(** Refined interval of a value at a block's entry. *)

val plain_facts : result -> fname:string -> (int * ival) list
(** Guard-free per-register fixpoint (non-top entries only). *)

val func_summary : result -> string -> (ival array * ival) option
(** Interprocedural (parameter ranges, return range) summary. *)

val analyzed_funcs : result -> string list
val just_to_string : just -> string
val cert_kind_to_string : cert_kind -> string

val selftest : unit -> int
(** Deterministic soundness check of the arithmetic kernel against
    {!Constfold} on sampled intervals and concrete values; returns the
    number of checks performed.  @raise Failure on any violation. *)
