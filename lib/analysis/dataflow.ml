open Sva_ir

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

(* Sweep cap: a monotone transfer over a finite lattice converges long
   before this; a non-monotone client fails loudly instead of spinning. *)
let max_visits_per_block = 1000

module Make (L : LATTICE) = struct
  type result = {
    input : string -> L.t;
    output : string -> L.t;
    iterations : int;
  }

  let solve ?(direction = Forward) ?(entry = L.bottom)
      ?(edge = fun ~src:_ ~dst:_ fact -> fact) ?widen ~transfer (f : Func.t)
      (cfg : Cfg.t) =
    let blocks = Cfg.reachable cfg in
    (* Forward: propagate entry->exits along successor edges.  Backward:
       the same algorithm on the reversed graph, seeding exit blocks. *)
    let flows_into label =
      match direction with
      | Forward -> Cfg.predecessors cfg label
      | Backward -> Cfg.successors cfg label
    in
    let flows_out label =
      match direction with
      | Forward -> Cfg.successors cfg label
      | Backward -> Cfg.predecessors cfg label
    in
    let entry_label = (Func.entry f).Func.label in
    let is_boundary label =
      match direction with
      | Forward -> label = entry_label
      | Backward -> Cfg.successors cfg label = []
    in
    let order =
      match direction with Forward -> blocks | Backward -> List.rev blocks
    in
    let inf : (string, L.t) Hashtbl.t = Hashtbl.create 16 in
    let outf : (string, L.t) Hashtbl.t = Hashtbl.create 16 in
    let get tbl label =
      match Hashtbl.find_opt tbl label with Some v -> v | None -> L.bottom
    in
    let visits = ref 0 in
    let worklist = Queue.create () in
    let queued = Hashtbl.create 16 in
    let enqueue label =
      if Cfg.is_reachable cfg label && not (Hashtbl.mem queued label) then begin
        Hashtbl.replace queued label ();
        Queue.add label worklist
      end
    in
    List.iter enqueue order;
    while not (Queue.is_empty worklist) do
      let label = Queue.take worklist in
      Hashtbl.remove queued label;
      incr visits;
      if !visits > max_visits_per_block * List.length blocks then
        failwith ("Dataflow.solve: no fixpoint in " ^ f.Func.f_name);
      let in_fact =
        let flowed =
          List.fold_left
            (fun acc p ->
              let fact =
                match direction with
                | Forward -> edge ~src:p ~dst:label (get outf p)
                | Backward -> edge ~src:label ~dst:p (get outf p)
              in
              L.join acc fact)
            L.bottom (flows_into label)
        in
        if is_boundary label then L.join entry flowed else flowed
      in
      (* Widening hook: on revisits the client may extrapolate the new
         input against the previously stored one (infinite-height
         lattices such as intervals converge this way).  The widened
         fact must be >= both arguments. *)
      let in_fact =
        match (widen, Hashtbl.find_opt inf label) with
        | Some w, Some old -> w ~label ~old ~cur:in_fact
        | _ -> in_fact
      in
      Hashtbl.replace inf label in_fact;
      let out_fact = transfer (Func.find_block f label) in_fact in
      if not (L.equal out_fact (get outf label)) then begin
        Hashtbl.replace outf label out_fact;
        List.iter enqueue (flows_out label)
      end
    done;
    { input = get inf; output = get outf; iterations = !visits }
end

module Summaries = struct
  type 'a t = (string, 'a) Hashtbl.t

  let solve cg ~funcs ~init ~equal ~transfer =
    let tbl : 'a t = Hashtbl.create 64 in
    List.iter (fun fn -> Hashtbl.replace tbl fn (init fn)) funcs;
    let worklist = Queue.create () in
    let queued = Hashtbl.create 64 in
    let enqueue fn =
      if Hashtbl.mem tbl fn && not (Hashtbl.mem queued fn) then begin
        Hashtbl.replace queued fn ();
        Queue.add fn worklist
      end
    in
    List.iter enqueue funcs;
    let get fn = try Hashtbl.find tbl fn with Not_found -> init fn in
    let update fn s =
      match Hashtbl.find_opt tbl fn with
      | Some old when not (equal old s) ->
          Hashtbl.replace tbl fn s;
          (* The function itself must be re-examined with its new
             summary, and so must its callers (their view changed). *)
          enqueue fn;
          List.iter enqueue (Callgraph.callers cg fn)
      | Some _ -> ()
      | None -> ()
    in
    while not (Queue.is_empty worklist) do
      let fn = Queue.take worklist in
      Hashtbl.remove queued fn;
      transfer ~get ~update fn
    done;
    tbl

  let get t fn = Hashtbl.find t fn
end
