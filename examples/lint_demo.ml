(* Lint demo: the static sanitizer layer (DESIGN.md Section 9).

     dune exec examples/lint_demo.exe

   The run-time checks catch memory-safety violations as they happen; the
   lint layer finds whole classes of kernel bugs before the code ever
   runs, using an interprocedural dataflow solver over the same SVA IR
   the safety passes consume.  We lint a small "vendor module" seeded
   with one bug per checker, fix the bugs and watch it lint clean, then
   show the flip side: the safe-access prover discharging load/store
   checks statically, so the instrumented build carries fewer run-time
   checks with identical behaviour. *)

module Pipeline = Sva_pipeline.Pipeline
module Pointsto = Sva_analysis.Pointsto
module Allocdecl = Sva_analysis.Allocdecl
module Lint = Sva_lint.Lint
module Checkinsert = Sva_safety.Checkinsert

let allocator_src =
  "long __km_cursor = 0;\n\
   extern long sva_heap_base(void);\n\
   __noanalyze char *kmalloc(long size) {\n\
  \  if (size <= 0) return (char*)0;\n\
  \  if (__km_cursor == 0) __km_cursor = sva_heap_base();\n\
  \  long p = __km_cursor;\n\
  \  __km_cursor = __km_cursor + ((size + 15) / 16) * 16;\n\
  \  return (char*)p;\n\
   }\n\
   __noanalyze void kfree(char *p) { }\n"

let aconfig =
  {
    Pointsto.default_config with
    Pointsto.syscall_register = Some "sva_register_syscall";
    syscall_invoke = Some "sva_syscall";
    allocators =
      [
        Allocdecl.ordinary ~free:"kfree" ~size_arg:0
          ~size_classes:[ 8; 16; 32; 64; 128 ] "kmalloc";
      ];
  }

let lconfig = Lint.config_of_aconfig ~extra_trusted:[ "copy_from_user" ] aconfig

(* One bug per checker:
   - sys_peek dereferences its user-supplied pointer without passing it
     through copy_from_user (user-taint);
   - get_cell dereferences a pointer that is null on every path reaching
     the load (null-deref);
   - on_tick is an interrupt handler whose helper calls the sleeping
     allocator vmalloc (irq-sleep). *)
let buggy =
  {|
    extern void sva_register_syscall(long num, ...);
    extern void sva_register_interrupt(long vec, ...);
    extern char *vmalloc(long n);
    extern long copy_from_user(char *dst, char *src, long n);

    long sys_peek(long uptr, long a1, long a2, long a3) {
      long *p = (long*)uptr;
      return *p;                 /* user pointer dereferenced directly */
    }

    long get_cell(int flag) {
      long *p = (long*)0;
      if (flag) return 0;
      return *p;                 /* definitely null here */
    }

    char *tick_buf = 0;
    void refill(void) {
      tick_buf = vmalloc(4096);  /* sleeping allocation ... */
    }
    long on_tick(long icp, long vec, long a2, long a3) {
      refill();                  /* ... reached from an interrupt handler */
      return 0;
    }

    void init(void) {
      sva_register_syscall(40, sys_peek);
      sva_register_interrupt(7, on_tick);
    }
  |}

let lint src =
  let m = Pipeline.compile ~name:"demo" [ src ] in
  let pa = Pointsto.run ~config:aconfig m in
  Lint.run ~config:lconfig m pa

let () =
  print_endline "== three seeded bugs, three checkers ==";
  let r = lint buggy in
  print_string (Lint.render r);
  List.iter
    (fun (checker, n) -> Printf.printf "  %-12s %d finding(s)\n" checker n)
    r.Lint.lr_counts;

  print_endline "";
  print_endline "== the fixed module lints clean ==";
  let fixed =
    {|
    extern void sva_register_syscall(long num, ...);
    extern long copy_from_user(char *dst, char *src, long n);

    long cell = 42;

    long sys_peek(long uptr, long a1, long a2, long a3) {
      long v = 0;
      if (copy_from_user((char*)&v, (char*)uptr, 8) < 0) return -1;
      return v;                  /* fetched through the trusted boundary */
    }

    long get_cell(int flag) {
      long *p = (long*)0;
      if (flag) p = &cell;
      if (p == 0) return -1;     /* guard refines p to non-null */
      return *p;
    }

    void init(void) { sva_register_syscall(40, sys_peek); }
  |}
  in
  let r = lint fixed in
  Printf.printf "  %d findings\n" (List.length r.Lint.lr_findings);

  print_endline "";
  print_endline "== proofs elide run-time checks ==";
  (* A provable access pattern: a fixed-size array walked with masked
     indices can never go out of bounds, so the prover lets Checkinsert
     skip the load/store checks.  The int-typed alias collapses the
     pool's type-homogeneity, so without the proofs every access would
     carry a run-time lscheck. *)
  let provable =
    {|
    long sum(long seed) {
      long a[4];
      int *alias = (int*)a;
      *alias = 7;
      a[0] = seed;
      a[1] = seed + 1;
      a[2] = a[0] + a[1];
      a[3] = a[2] * 2;
      return a[3];
    }
  |}
  in
  let build lint =
    Pipeline.build ~conf:Pipeline.Sva_safe ~aconfig ~lint ~lint_config:lconfig
      ~name:"demo" [ allocator_src; provable ]
  in
  let stats b =
    match b.Pipeline.bl_summary with
    | Some (s : Checkinsert.summary) -> s.Checkinsert.ls_inserted
    | None -> 0
  in
  let plain = build false and linted = build true in
  Printf.printf "  load/store checks inserted: %d without lint, %d with\n"
    (stats plain) (stats linted);
  let run b =
    let t = Pipeline.instantiate b in
    Sva_interp.Interp.call t "sum" [ 3L ]
  in
  (match (run plain, run linted) with
  | Some a, Some b when a = b ->
      Printf.printf "  both builds compute sum(3) = %Ld\n" a
  | _ -> failwith "builds disagree");
  print_endline "";
  print_endline "Try: dune exec bin/sva_lint.exe -- --fixture";
  print_endline "     (the kernel plus five seeded bugs, all flagged)"
